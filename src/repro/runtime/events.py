"""Trace event records.

Every observable action of a task-parallel execution is represented by one
of these frozen dataclasses.  The runtime dispatches them to observers as
they happen; :class:`repro.runtime.observer.TraceRecorder` additionally
collects them into a :class:`repro.trace.trace.Trace` so that executions
can be replayed offline through any checker or explored for alternative
interleavings.

``seq`` is a runtime-global sequence number: the total order in which the
events were observed.  For memory events this is the trace order that a
trace-sensitive analysis such as Velodrome reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

from repro.report import READ, WRITE

Location = Hashable


@dataclass(frozen=True)
class TaskSpawnEvent:
    """Task *parent* spawned task *child*; *async_node* is the DPST async node."""

    seq: int
    parent: int
    child: int
    async_node: int


@dataclass(frozen=True)
class TaskBeginEvent:
    """Task *task* started executing its body."""

    seq: int
    task: int


@dataclass(frozen=True)
class TaskEndEvent:
    """Task *task* finished (its body returned and all children completed)."""

    seq: int
    task: int


@dataclass(frozen=True)
class SyncEvent:
    """Task *task* executed a ``sync`` (or closed a finish scope)."""

    seq: int
    task: int
    finish_node: int


@dataclass(frozen=True)
class MemoryEvent:
    """A shared-memory access.

    Attributes
    ----------
    seq:
        Global observation order.
    task / step:
        The performing task and its current DPST step node.
    location:
        The shared location accessed.
    access_type:
        :data:`repro.report.READ` or :data:`repro.report.WRITE`.
    lockset:
        The versioned lock names held by the task at the access, sorted.
    """

    seq: int
    task: int
    step: int
    location: Location
    access_type: str
    lockset: Tuple[str, ...] = ()

    @property
    def is_write(self) -> bool:
        return self.access_type == WRITE

    @property
    def is_read(self) -> bool:
        return self.access_type == READ

    def conflicts_with(self, other: "MemoryEvent") -> bool:
        """Do the two accesses conflict (same location, at least one write)?

        Task identity is *not* considered here; callers that need the
        "different tasks" component of the conflict definition check it
        separately.
        """
        return self.location == other.location and (self.is_write or other.is_write)


@dataclass(frozen=True)
class AcquireEvent:
    """Task *task* acquired lock *name* (versioned as *versioned_name*)."""

    seq: int
    task: int
    step: int
    name: str
    versioned_name: str


@dataclass(frozen=True)
class ReleaseEvent:
    """Task *task* released lock *name* (which was held as *versioned_name*)."""

    seq: int
    task: int
    step: int
    name: str
    versioned_name: str
