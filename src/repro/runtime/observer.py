"""Observer protocol: how analyses attach to the runtime.

An observer receives every runtime event (task management, memory accesses,
lock operations).  The atomicity checkers, the trace recorder and the
statistics collector are all observers, so a single execution can feed any
combination of analyses.

``requires_dpst`` lets the runtime skip DPST construction entirely when no
attached observer needs it -- that is the *uninstrumented baseline*
configuration of the Figure 13 overhead experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence, Tuple

from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.executor import RunContext

Location = Hashable


class RuntimeObserver:
    """Base observer with no-op handlers.

    Subclasses override the events they care about.  ``on_run_begin``
    receives the :class:`~repro.runtime.executor.RunContext`, which exposes
    the DPST, the LCA engine and the program's atomicity annotations.
    """

    #: Set to ``True`` when the observer needs the DPST / LCA engine.
    requires_dpst = False

    def metrics(self) -> dict:
        """Accumulated observability counters, keyed by the canonical
        names of :data:`repro.obs.METRIC_NAMES`.

        Observers accumulate plain integers on their hot paths and
        surface them here; pipeline drivers flush the mapping into a
        :class:`repro.obs.Recorder` at phase boundaries (the per-event
        path never touches a recorder, keeping the disabled-observability
        configuration free).  The base implementation reports nothing.
        """
        return {}

    #: Set to ``True`` when the observer's verdict depends only on the
    #: per-location event subsequences (plus the DPST), never on the
    #: relative order of events touching *different* locations.  Such
    #: observers can be replayed shard-by-shard by the offline pipeline
    #: (:mod:`repro.checker.sharded`).  Trace-order-sensitive analyses
    #: (Velodrome's cross-location happens-before graph) must leave this
    #: ``False``.
    location_sharded = False

    def on_run_begin(self, run: "RunContext") -> None:
        """Called once before the root task starts."""

    def on_run_end(self, run: "RunContext") -> None:
        """Called once after the root task (and all descendants) finished."""

    def on_task_spawn(self, event: TaskSpawnEvent) -> None:
        """A task created a child task."""

    def on_task_begin(self, event: TaskBeginEvent) -> None:
        """A task's body started executing."""

    def on_task_end(self, event: TaskEndEvent) -> None:
        """A task's body finished and its children completed."""

    def on_sync(self, event: SyncEvent) -> None:
        """A task executed ``sync`` / closed a finish scope."""

    def on_memory(self, event: MemoryEvent) -> None:
        """A shared-memory read or write was performed."""

    def on_acquire(self, event: AcquireEvent) -> None:
        """A lock was acquired."""

    def on_release(self, event: ReleaseEvent) -> None:
        """A lock was released."""


class ObserverChain(RuntimeObserver):
    """Fan-out to a sequence of observers, preserving order."""

    def __init__(self, observers: Sequence[RuntimeObserver]) -> None:
        self.observers: List[RuntimeObserver] = list(observers)

    @property
    def requires_dpst(self) -> bool:  # type: ignore[override]
        return any(obs.requires_dpst for obs in self.observers)

    def on_run_begin(self, run: "RunContext") -> None:
        for obs in self.observers:
            obs.on_run_begin(run)

    def on_run_end(self, run: "RunContext") -> None:
        for obs in self.observers:
            obs.on_run_end(run)

    def on_task_spawn(self, event: TaskSpawnEvent) -> None:
        for obs in self.observers:
            obs.on_task_spawn(event)

    def on_task_begin(self, event: TaskBeginEvent) -> None:
        for obs in self.observers:
            obs.on_task_begin(event)

    def on_task_end(self, event: TaskEndEvent) -> None:
        for obs in self.observers:
            obs.on_task_end(event)

    def on_sync(self, event: SyncEvent) -> None:
        for obs in self.observers:
            obs.on_sync(event)

    def on_memory(self, event: MemoryEvent) -> None:
        for obs in self.observers:
            obs.on_memory(event)

    def on_acquire(self, event: AcquireEvent) -> None:
        for obs in self.observers:
            obs.on_acquire(event)

    def on_release(self, event: ReleaseEvent) -> None:
        for obs in self.observers:
            obs.on_release(event)


class StatsObserver(RuntimeObserver):
    """Collects the per-run characteristics Table 1 reports.

    The DPST node count and LCA-query statistics come from the run context
    at ``on_run_end``; this observer itself counts tasks, memory events and
    lock operations.
    """

    requires_dpst = False

    def __init__(self) -> None:
        self.tasks = 0
        self.memory_events = 0
        self.reads = 0
        self.writes = 0
        self.lock_ops = 0
        self.syncs = 0
        self.dpst_nodes: Optional[int] = None
        self.lca_queries: Optional[int] = None
        self.lca_unique: Optional[int] = None

    def on_task_begin(self, event: TaskBeginEvent) -> None:
        self.tasks += 1

    def on_memory(self, event: MemoryEvent) -> None:
        self.memory_events += 1
        if event.is_write:
            self.writes += 1
        else:
            self.reads += 1

    def on_acquire(self, event: AcquireEvent) -> None:
        self.lock_ops += 1

    def on_release(self, event: ReleaseEvent) -> None:
        self.lock_ops += 1

    def on_sync(self, event: SyncEvent) -> None:
        self.syncs += 1

    def on_run_end(self, run: "RunContext") -> None:
        if run.dpst is not None:
            self.dpst_nodes = len(run.dpst)
        if run.engine is not None:
            self.lca_queries = run.engine.stats.queries
            self.lca_unique = run.engine.stats.unique

    @property
    def unique_lca_percent(self) -> float:
        """Percentage of LCA queries that were unique; 0.0 when none ran."""
        if not self.lca_queries:
            return 0.0
        return 100.0 * (self.lca_unique or 0) / self.lca_queries

    def metrics(self) -> dict:
        return {
            "runtime.tasks": self.tasks,
            "runtime.memory_events": self.memory_events,
            "runtime.lock_ops": self.lock_ops,
            "runtime.syncs": self.syncs,
        }


class TraceRecorder(RuntimeObserver):
    """Records every event into an in-memory list for offline analysis.

    The resulting event list can be wrapped in a
    :class:`repro.trace.trace.Trace` (done automatically by
    :meth:`as_trace`) and replayed through any checker or fed to the
    interleaving explorer.
    """

    requires_dpst = True

    def __init__(self) -> None:
        self.events: List[object] = []
        self.dpst = None

    def on_run_begin(self, run: "RunContext") -> None:
        self.dpst = run.dpst

    def on_task_spawn(self, event: TaskSpawnEvent) -> None:
        self.events.append(event)

    def on_task_begin(self, event: TaskBeginEvent) -> None:
        self.events.append(event)

    def on_task_end(self, event: TaskEndEvent) -> None:
        self.events.append(event)

    def on_sync(self, event: SyncEvent) -> None:
        self.events.append(event)

    def on_memory(self, event: MemoryEvent) -> None:
        self.events.append(event)

    def on_acquire(self, event: AcquireEvent) -> None:
        self.events.append(event)

    def on_release(self, event: ReleaseEvent) -> None:
        self.events.append(event)

    def memory_events(self) -> List[MemoryEvent]:
        """Just the memory accesses, in observation order."""
        return [e for e in self.events if isinstance(e, MemoryEvent)]

    def as_trace(self):
        """Wrap the recorded events in a :class:`repro.trace.trace.Trace`,
        carrying the DPST of the producing run when one was built."""
        from repro.trace.trace import Trace

        return Trace(list(self.events), dpst=self.dpst)
