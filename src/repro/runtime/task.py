"""Tasks, scope frames, and the user-facing :class:`TaskContext` API.

A *task* is one dynamic unit of parallel work.  Programs are written as
functions taking a :class:`TaskContext` as their first argument::

    def child(ctx, i):
        value = ctx.read(("counter", i))
        ctx.write(("counter", i), value + 1)

    def main(ctx):
        for i in range(4):
            ctx.spawn(child, i)
        ctx.sync()

``spawn``/``sync`` follow Cilk/TBB spawn-sync semantics; ``with
ctx.finish():`` provides Habanero-style async-finish scoping.  Shared
memory is accessed exclusively through ``ctx.read``/``ctx.write`` (this is
the "instrumentation pass": every access is observable), while ordinary
Python locals remain private to the task.

Scope frames
------------
Each task carries a stack of :class:`ScopeFrame` objects mirroring the DPST
construction rules of Section 2:

* the bottom ``BODY`` frame corresponds to the task's body (the root finish
  node for the main task, the task's async node otherwise);
* the first ``spawn`` after a task start, a ``sync`` or a ``finish`` entry
  pushes an ``IMPLICIT`` finish frame (creating a DPST finish node) that
  subsequent spawns target -- this reproduces Figure 2, where T1's first
  spawn creates F12 under the root F11;
* ``with ctx.finish():`` pushes an ``EXPLICIT`` finish frame.

``sync`` waits for (and pops) the innermost implicit frame; finish-block
exit and task end drain every frame above their own.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Tuple,
)

from repro.errors import RuntimeUsageError
from repro.runtime.locks import TaskLockState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.executor import Runtime

Location = Hashable
TaskBody = Callable[..., Any]


class FrameKind(enum.Enum):
    """The three scope-frame flavours (see module docstring)."""

    BODY = "body"
    IMPLICIT = "implicit"
    EXPLICIT = "explicit"


class ScopeFrame:
    """One entry of a task's scope stack.

    ``node`` is the DPST node children of this scope hang from (an async or
    finish node), or ``-1`` when the run is executing without a DPST.  The
    synchronization fields serve the executors: ``pending`` holds deferred
    children for the serial help-first policies, ``outstanding``/``done``
    count live children for the work-stealing executor.
    """

    __slots__ = ("kind", "node", "pending", "outstanding", "done")

    def __init__(self, kind: FrameKind, node: int) -> None:
        self.kind = kind
        self.node = node
        self.pending: Deque["Task"] = deque()
        self.outstanding = 0
        self.done = threading.Condition()

    def child_started(self) -> None:
        with self.done:
            self.outstanding += 1

    def child_finished(self) -> None:
        with self.done:
            self.outstanding -= 1
            if self.outstanding <= 0:
                self.done.notify_all()


class Task:
    """One dynamic task: body, DPST bookkeeping and lock state."""

    __slots__ = (
        "task_id",
        "parent_id",
        "body",
        "args",
        "kwargs",
        "frames",
        "current_step",
        "lock_state",
        "notify_frame",
        "result",
        "depth",
    )

    def __init__(
        self,
        task_id: int,
        parent_id: Optional[int],
        body: TaskBody,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        base_node: int,
        notify_frame: Optional[ScopeFrame],
        depth: int = 0,
    ) -> None:
        self.task_id = task_id
        self.parent_id = parent_id
        self.body = body
        self.args = args
        self.kwargs = kwargs
        #: Scope stack; bottom frame is the task body scope.
        self.frames: List[ScopeFrame] = [ScopeFrame(FrameKind.BODY, base_node)]
        #: The step node accumulating this task's current accesses, or
        #: ``None`` when no step is open (just after a task construct).
        self.current_step: Optional[int] = None
        self.lock_state = TaskLockState(task_id)
        #: The parent scope frame to notify on completion (work stealing).
        self.notify_frame = notify_frame
        #: Return value of the body, populated after execution.
        self.result: Any = None
        #: Spawn-tree depth, for diagnostics and scheduling heuristics.
        self.depth = depth

    @property
    def top_frame(self) -> ScopeFrame:
        return self.frames[-1]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Task {self.task_id} frames={len(self.frames)}>"


class TaskContext:
    """The API surface a task body programs against.

    One context exists per task; it simply forwards to the shared
    :class:`~repro.runtime.executor.Runtime` with its task attached.
    """

    __slots__ = ("_runtime", "_task")

    def __init__(self, runtime: "Runtime", task: Task) -> None:
        self._runtime = runtime
        self._task = task

    # -- identity -----------------------------------------------------------

    @property
    def task_id(self) -> int:
        """The unique id of the executing task."""
        return self._task.task_id

    @property
    def depth(self) -> int:
        """Spawn-tree depth of the executing task (main task = 0)."""
        return self._task.depth

    # -- task management -------------------------------------------------------

    def spawn(self, body: TaskBody, *args: Any, **kwargs: Any) -> None:
        """Spawn *body* as a child task running logically in parallel.

        The child receives a fresh :class:`TaskContext` as its first
        argument, followed by ``*args``/``**kwargs``.  When the child runs
        is up to the executor; ``sync`` guarantees completion.
        """
        self._runtime.spawn(self._task, body, args, kwargs)

    def sync(self) -> None:
        """Wait for every child spawned since the last sync point."""
        self._runtime.sync(self._task)

    def finish(self) -> "_FinishBlock":
        """Habanero-style finish scope::

            with ctx.finish():
                ctx.spawn(work, 1)
                ctx.spawn(work, 2)
            # both children complete here
        """
        return _FinishBlock(self._runtime, self._task)

    # -- shared memory ------------------------------------------------------------

    def read(self, location: Location) -> Any:
        """Read shared *location* (instrumented)."""
        return self._runtime.read(self._task, location)

    def write(self, location: Location, value: Any) -> None:
        """Write *value* to shared *location* (instrumented)."""
        self._runtime.write(self._task, location, value)

    def update(self, location: Location, fn: Callable[[Any], Any]) -> Any:
        """Read-modify-write convenience: ``write(loc, fn(read(loc)))``.

        Performs an instrumented read followed by an instrumented write --
        i.e. it is *not* atomic, exactly like the ``a = X; ...; X = a``
        idiom the paper's running example checks.
        """
        value = fn(self._runtime.read(self._task, location))
        self._runtime.write(self._task, location, value)
        return value

    def add(self, location: Location, delta: Any) -> Any:
        """Instrumented ``location += delta`` (read then write)."""
        return self.update(location, lambda value: value + delta)

    # -- synchronization --------------------------------------------------------

    def acquire(self, name: str) -> None:
        """Acquire the program lock *name*."""
        self._runtime.acquire(self._task, name)

    def release(self, name: str) -> None:
        """Release the program lock *name*."""
        self._runtime.release(self._task, name)

    def lock(self, name: str) -> "_LockBlock":
        """Critical section context manager::

            with ctx.lock("L"):
                ctx.add("X", 1)
        """
        return _LockBlock(self, name)

    def locked(self, name: str) -> bool:
        """Does the executing task currently hold lock *name*?"""
        return self._task.lock_state.holds(name)


class _FinishBlock:
    """Context manager implementing ``with ctx.finish():``."""

    __slots__ = ("_runtime", "_task")

    def __init__(self, runtime: "Runtime", task: Task) -> None:
        self._runtime = runtime
        self._task = task

    def __enter__(self) -> None:
        self._runtime.finish_enter(self._task)

    def __exit__(self, exc_type, exc, tb) -> None:
        # Always drain the scope, even on exception, so the frame stack
        # stays consistent; the exception (if any) still propagates.
        self._runtime.finish_exit(self._task)


class _LockBlock:
    """Context manager implementing ``with ctx.lock(name):``."""

    __slots__ = ("_ctx", "_name")

    def __init__(self, ctx: TaskContext, name: str) -> None:
        self._ctx = ctx
        self._name = name

    def __enter__(self) -> None:
        self._ctx.acquire(self._name)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._ctx.release(self._name)
