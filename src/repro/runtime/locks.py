"""Locks, per-task locksets, and lock versioning (paper Section 3.3).

The checker needs, for every memory access, the set of locks held by the
performing task -- with the twist that a lock *released and re-acquired by
the same task gets a fresh name*.  Two accesses are protected by the same
critical section iff the intersection of their versioned locksets is
non-empty; without versioning, two separate critical sections on the same
lock ``L`` would spuriously appear to protect a two-access pattern, hiding
atomicity violations like the one in the paper's Figure 11/12 example.

:class:`LockTable` owns the mutual-exclusion side (real ``threading.Lock``
objects so the work-stealing executor genuinely excludes), and
:class:`TaskLockState` tracks the versioned lockset of one task.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Tuple

from repro.errors import RuntimeUsageError


def versioned_name(base: str, epoch: int) -> str:
    """The versioned lock name: ``L`` for epoch 0, then ``L#1``, ``L#2`` ...

    Epochs are per task, so ``L#1`` from two different tasks are distinct
    *accidentally equal* strings -- harmless, because the checker only ever
    intersects locksets of two accesses performed by the *same* task.
    """
    return base if epoch == 0 else f"{base}#{epoch}"


class TaskLockState:
    """Versioned lockset bookkeeping for one task.

    Locks are non-reentrant (matching ``tbb::mutex``): re-acquiring a held
    lock raises :class:`RuntimeUsageError`.
    """

    def __init__(self, task_id: int) -> None:
        self.task_id = task_id
        #: base name -> versioned name currently held
        self._held: Dict[str, str] = {}
        #: base name -> next epoch to use on re-acquisition
        self._epochs: Dict[str, int] = {}
        self._frozen_cache: FrozenSet[str] = frozenset()
        self._dirty = False
        #: Fresh versioned names minted by re-acquisitions (epoch > 0);
        #: surfaced as the ``runtime.lock_version_bumps`` metric.
        self.versions_minted = 0

    def acquire(self, base: str) -> str:
        """Record acquisition of *base*; returns the versioned name."""
        if base in self._held:
            raise RuntimeUsageError(
                f"task {self.task_id} re-acquired lock {base!r} it already holds"
            )
        epoch = self._epochs.get(base, 0)
        if epoch:
            self.versions_minted += 1
        name = versioned_name(base, epoch)
        self._held[base] = name
        self._dirty = True
        return name

    def release(self, base: str) -> str:
        """Record release of *base*; returns the versioned name released.

        Bumps the epoch so the next acquisition by this task gets a fresh
        versioned name (the paper's lock-versioning rule).
        """
        name = self._held.pop(base, None)
        if name is None:
            raise RuntimeUsageError(
                f"task {self.task_id} released lock {base!r} it does not hold"
            )
        self._epochs[base] = self._epochs.get(base, 0) + 1
        self._dirty = True
        return name

    def lockset(self) -> FrozenSet[str]:
        """The current versioned lockset (cached between mutations)."""
        if self._dirty:
            self._frozen_cache = frozenset(self._held.values())
            self._dirty = False
        return self._frozen_cache

    def lockset_tuple(self) -> Tuple[str, ...]:
        """Sorted tuple form, used in events and reports."""
        return tuple(sorted(self.lockset()))

    @property
    def holds_any(self) -> bool:
        return bool(self._held)

    def holds(self, base: str) -> bool:
        return base in self._held


class LockTable:
    """The program's locks: real mutual exclusion keyed by base name.

    Lazily creates a ``threading.Lock`` per name.  Serial executors never
    block on these (a serial schedule cannot contend), but the
    work-stealing executor relies on them for genuine exclusion.
    """

    def __init__(self) -> None:
        self._locks: Dict[str, threading.Lock] = {}
        self._table_guard = threading.Lock()

    def _get(self, base: str) -> threading.Lock:
        with self._table_guard:
            lock = self._locks.get(base)
            if lock is None:
                lock = threading.Lock()
                self._locks[base] = lock
            return lock

    def acquire(self, base: str) -> None:
        """Block until *base* is available and take it."""
        self._get(base).acquire()

    def release(self, base: str) -> None:
        self._get(base).release()

    def known_locks(self) -> Tuple[str, ...]:
        """Base names of every lock that has been touched, sorted."""
        with self._table_guard:
            return tuple(sorted(self._locks))
