"""Program packaging and the one-call entry points.

:class:`TaskProgram` bundles a root task body with its initial memory and
atomicity annotations, so examples, tests, the 36-program violation suite
and the 13 benchmark workloads all share one shape.  :func:`run_program`
(and the :meth:`TaskProgram.run` convenience) executes a program under a
chosen executor with a chosen set of observers and returns a
:class:`RunResult` gathering everything an experiment needs: the DPST, the
collected trace, per-run statistics and each checker's violation report.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Union

from repro.checker.annotations import AtomicAnnotations
from repro.dpst.base import DPSTBase
from repro.report import ViolationReport
from repro.runtime.executor import Executor, RunContext, Runtime, SerialExecutor
from repro.runtime.observer import RuntimeObserver, StatsObserver, TraceRecorder
from repro.runtime.shadow import ShadowMemory
from repro.runtime.task import TaskBody

Location = Hashable


class TaskProgram:
    """A runnable task-parallel program.

    Parameters
    ----------
    body:
        The root task function: ``body(ctx, *args, **kwargs)``.
    name:
        Human-readable name (used in reports and benchmark tables).
    initial_memory:
        Pre-initialized shared locations.
    annotations:
        Atomicity annotations; defaults to check-everything.
    args / kwargs:
        Extra arguments passed to *body* after the context.
    """

    def __init__(
        self,
        body: TaskBody,
        name: Optional[str] = None,
        initial_memory: Optional[Mapping[Location, Any]] = None,
        annotations: Optional[AtomicAnnotations] = None,
        args: Sequence[Any] = (),
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.body = body
        self.name = name or getattr(body, "__name__", "program")
        self.initial_memory = dict(initial_memory) if initial_memory else {}
        self.annotations = annotations if annotations is not None else AtomicAnnotations()
        self.args = tuple(args)
        self.kwargs = dict(kwargs) if kwargs else {}

    def run(self, **options: Any) -> "RunResult":
        """Execute this program; see :func:`run_program` for options."""
        return run_program(self, **options)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<TaskProgram {self.name!r}>"


class RunResult:
    """Everything produced by one execution of a :class:`TaskProgram`."""

    def __init__(
        self,
        program: TaskProgram,
        context: RunContext,
        observers: Sequence[RuntimeObserver],
        stats: Optional[StatsObserver],
        recorder: Optional[TraceRecorder],
        value: Any,
    ) -> None:
        self.program = program
        self.context = context
        self.observers = list(observers)
        self.stats = stats
        self.recorder = recorder
        #: Return value of the root task body.
        self.value = value

    # -- convenience accessors -------------------------------------------------

    @property
    def dpst(self) -> Optional[DPSTBase]:
        return self.context.dpst

    @property
    def engine(self) -> Any:
        """The run's parallelism engine (see :mod:`repro.dpst.engines`)."""
        return self.context.engine

    @property
    def lca_engine(self) -> Any:
        """Deprecated alias of :attr:`engine` (the pre-registry name)."""
        warnings.warn(
            "RunResult.lca_engine is deprecated; use RunResult.engine",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.context.engine

    @property
    def shadow(self) -> ShadowMemory:
        return self.context.shadow

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds spent executing the root task."""
        return self.context.elapsed

    @property
    def trace(self):
        """The recorded trace, when a recorder was attached."""
        return None if self.recorder is None else self.recorder.as_trace()

    def report(self) -> ViolationReport:
        """Merged violation report across all attached checkers."""
        merged = ViolationReport()
        for observer in self.observers:
            found = getattr(observer, "report", None)
            if isinstance(found, ViolationReport):
                merged.extend(found)
        return merged

    @property
    def reports(self) -> Dict[str, ViolationReport]:
        """Per-checker reports, keyed by the checker's ``checker_name``.

        The one sanctioned way to get at a specific checker's findings --
        no reaching into observer internals::

            result = run_program(program, checkers=["optimized", "basic"])
            result.reports["optimized"].locations()
        """
        out: Dict[str, ViolationReport] = {}
        for observer in self.observers:
            found = getattr(observer, "report", None)
            if isinstance(found, ViolationReport):
                out[getattr(observer, "checker_name", type(observer).__name__)] = found
        return out

    def reports_by_checker(self) -> Dict[str, ViolationReport]:
        """Alias of :attr:`reports` (kept for existing callers)."""
        return self.reports

    def first_violation(self):
        """The first violation any attached checker found, or ``None``."""
        for found in self.report():
            return found
        return None

    @property
    def metrics(self) -> Dict[str, int]:
        """Flat observability counters for this run.

        Sums every attached observer's ``metrics()`` and folds in the
        parallelism engine's :class:`~repro.dpst.stats.EngineStats` and
        the runtime's lock-version bumps -- all under the canonical
        :data:`repro.obs.METRIC_NAMES` names, so a live run, an offline
        ``jobs=1`` replay, and a ``jobs=N`` sharded run report
        field-for-field comparable numbers.
        """
        merged: Dict[str, int] = {}
        for observer in self.observers:
            for name, value in observer.metrics().items():
                merged[name] = merged.get(name, 0) + value
        engine = self.context.engine
        if engine is not None:
            from repro.dpst.engines import engine_name_of

            folded = engine.stats.as_metrics(engine_name_of(engine))
            for name, value in folded.items():
                merged[name] = merged.get(name, 0) + value
        merged["runtime.lock_version_bumps"] = sum(
            task.lock_state.versions_minted
            for task in self.context.tasks.values()
        )
        return merged

    @property
    def checker_metrics(self) -> Dict[str, Dict[str, int]]:
        """Per-observer counters, keyed like :attr:`reports`."""
        out: Dict[str, Dict[str, int]] = {}
        for observer in self.observers:
            found = observer.metrics()
            if found:
                name = getattr(observer, "checker_name", type(observer).__name__)
                out[name] = dict(found)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<RunResult {self.program.name!r} elapsed={self.elapsed:.4f}s "
            f"violations={len(self.report())}>"
        )


def run_program(
    program: Union[TaskProgram, TaskBody],
    executor: Optional[Executor] = None,
    observers: Sequence[RuntimeObserver] = (),
    checkers: Sequence[Any] = (),
    dpst_layout: str = "array",
    build_dpst: Optional[bool] = None,
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    record_trace: bool = False,
    collect_stats: bool = False,
    recorder: Any = None,
) -> RunResult:
    """Run *program* and return a :class:`RunResult`.

    Parameters
    ----------
    program:
        A :class:`TaskProgram`, or a bare body function (wrapped on the fly).
    executor:
        Scheduling strategy; defaults to the Cilk-style serial elision.
    observers:
        Analyses to attach (checkers etc.).
    checkers:
        Additional analyses given as :func:`repro.checker.make_checker`
        specs -- registered names, checker classes, or instances -- so
        callers need not construct observers by hand::

            run_program(program, checkers=["optimized", BasicAtomicityChecker])
    dpst_layout:
        ``"array"`` (paper's optimized layout) or ``"linked"``.
    build_dpst:
        Force DPST construction on/off; default: build iff any observer is
        attached.
    lca_cache:
        Enable the LCA memo table (the paper's caching optimization).
    parallel_engine:
        Registry name of the parallelism engine answering series-parallel
        queries -- any name in
        :func:`repro.dpst.engines.available_engines` (built-ins:
        ``"lca"``, ``"labels"``, ``"vc"``, ``"depa"``; default the
        paper's tree-walk ``"lca"``).  Unknown names raise
        :class:`repro.dpst.engines.UnknownEngineError`.
    record_trace / collect_stats:
        Attach a :class:`TraceRecorder` / :class:`StatsObserver`
        automatically and expose them on the result.
    recorder:
        Optional :class:`repro.obs.Recorder`.  When enabled, the run
        executes under a ``"record"`` span and every observer's
        accumulated counters (plus engine stats, lock-version bumps and
        the DPST node count) are flushed into it at the end.  Disabled
        or ``None`` adds nothing to the execution path.
    """
    if not isinstance(program, TaskProgram):
        program = TaskProgram(program)
    if executor is None:
        executor = SerialExecutor()
    attached: List[RuntimeObserver] = list(observers)
    if checkers:
        from repro.checker import make_checker

        attached.extend(make_checker(spec) for spec in checkers)
    trace_recorder: Optional[TraceRecorder] = None
    stats: Optional[StatsObserver] = None
    if record_trace:
        trace_recorder = TraceRecorder()
        attached.append(trace_recorder)
    if collect_stats:
        stats = StatsObserver()
        attached.append(stats)
    runtime = Runtime(
        executor=executor,
        observers=attached,
        shadow=ShadowMemory(initial=program.initial_memory),
        annotations=program.annotations,
        dpst_layout=dpst_layout,
        build_dpst=build_dpst,
        lca_cache=lca_cache,
        parallel_engine=parallel_engine,
        recorder=recorder,
    )
    if recorder is not None and recorder.enabled:
        from repro.obs import (
            SPAN_RECORD,
            flush_engine_stats,
            flush_observer_metrics,
        )

        with recorder.span(SPAN_RECORD):
            context = runtime.run(program.body, *program.args, **program.kwargs)
        for observer in attached:
            flush_observer_metrics(recorder, observer)
        flush_engine_stats(recorder, context.engine)
        recorder.count(
            "runtime.lock_version_bumps",
            sum(
                task.lock_state.versions_minted
                for task in context.tasks.values()
            ),
        )
        recorder.gauge("dpst.nodes", float(context.dpst_nodes))
    else:
        context = runtime.run(program.body, *program.args, **program.kwargs)
    root_task = context.tasks.get(0)
    value = None if root_task is None else root_task.result
    return RunResult(program, context, attached, stats, trace_recorder, value)


def check_program(
    program: Union[TaskProgram, TaskBody],
    checker: Any = "optimized",
    executor: Optional[Executor] = None,
    dpst_layout: str = "array",
    **checker_kwargs: Any,
) -> ViolationReport:
    """One-call convenience: run *program* under one checker.

    .. deprecated::
        :class:`repro.session.CheckSession` (or its
        :func:`~repro.session.check_trace` shorthand) is the front door
        now -- it covers live runs, recorded traces, trace files,
        sharded checking and metrics collection under one API.  This
        shim forwards to :func:`run_program` unchanged and will be
        removed in a future release.

    ``checker`` is any :func:`repro.checker.make_checker` spec -- a
    registered name such as ``"optimized"``, a checker class, or a
    pre-built instance.  Returns the checker's
    :class:`~repro.report.ViolationReport`.
    """
    warnings.warn(
        "check_program() is deprecated; use repro.session.CheckSession "
        "(or check_trace) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.checker import make_checker

    analysis = make_checker(checker, **checker_kwargs)
    result = run_program(
        program,
        executor=executor,
        observers=[analysis],
        dpst_layout=dpst_layout,
    )
    return result.report()
