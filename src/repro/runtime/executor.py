"""The runtime core and its executors.

:class:`Runtime` owns everything shared by the tasks of one execution: the
DPST under construction, the shadow memory, the lock table, the observer
chain and the global event sequence counter.  It implements the semantics
of ``spawn``/``sync``/``finish`` and of instrumented memory and lock
operations; *when* spawned tasks actually run is delegated to an executor
strategy:

* :class:`SerialExecutor` with ``policy="child_first"`` runs each child at
  its spawn point (the Cilk serial elision);
* :class:`SerialExecutor` with ``policy="help_first"`` defers children and
  runs them at the matching sync point, either FIFO or LIFO -- LIFO
  reproduces the trace of the paper's Figure 5, where T3's accesses are
  observed before T2's;
* :class:`RandomOrderExecutor` randomizes both decisions with a seed;
* :class:`WorkStealingExecutor` runs tasks on a pool of worker threads
  with per-worker deques and random stealing, like the TBB scheduler.

All schedules produced by these executors are legal executions of the same
program, and -- the paper's central point -- the atomicity checker's
verdict is identical on every one of them.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import warnings

from repro.dpst import ArrayDPST, LCAEngine, LinkedDPST, NodeKind, ROOT_ID, make_dpst
from repro.dpst.engines import make_engine
from repro.dpst.base import DPSTBase
from repro.errors import RuntimeUsageError
from repro.report import READ, WRITE
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.runtime.locks import LockTable
from repro.runtime.observer import ObserverChain, RuntimeObserver
from repro.runtime.shadow import ShadowMemory
from repro.runtime.task import FrameKind, ScopeFrame, Task, TaskBody, TaskContext

Location = Hashable

#: Step id used in events when the run executes without a DPST.
NO_STEP = -1


class RunContext:
    """Everything observers may need about the execution in progress."""

    def __init__(
        self,
        dpst: Optional[DPSTBase],
        engine: Any,
        shadow: ShadowMemory,
        locks: LockTable,
        annotations: Any,
        parallel_engine: str = "lca",
        recorder: Any = None,
    ) -> None:
        self.dpst = dpst
        #: The :class:`~repro.dpst.engines.ParallelismEngine` answering
        #: series-parallel queries for this run (``None`` when no DPST is
        #: built).  The historical name ``lca_engine`` is a deprecated
        #: alias.
        self.engine = engine
        self.shadow = shadow
        self.locks = locks
        #: The program's atomicity annotations
        #: (:class:`repro.checker.annotations.AtomicAnnotations`).
        self.annotations = annotations
        #: The observability sink for this run -- a
        #: :class:`repro.obs.Recorder`; defaults to the no-op
        #: :data:`repro.obs.NULL_RECORDER` so observers may use it
        #: unconditionally.
        if recorder is None:
            from repro.obs import NULL_RECORDER

            recorder = NULL_RECORDER
        self.recorder = recorder
        #: The registry name of the engine answering the queries -- any
        #: name in :func:`repro.dpst.engines.available_engines`.
        self.parallel_engine = parallel_engine
        #: Wall-clock run time in seconds, filled in by the driver.
        self.elapsed: float = 0.0
        #: Map task id -> :class:`Task`, for post-run inspection.
        self.tasks: Dict[int, Task] = {}

    @property
    def lca_engine(self) -> Any:
        """Deprecated alias of :attr:`engine` (the pre-registry name)."""
        warnings.warn(
            "RunContext.lca_engine is deprecated; use RunContext.engine",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.engine

    @property
    def dpst_nodes(self) -> int:
        return 0 if self.dpst is None else len(self.dpst)


class Executor:
    """Strategy interface: decides when spawned tasks execute."""

    #: Human-readable name used by benchmarks.
    name = "abstract"

    def run_root(self, runtime: "Runtime", root: Task) -> None:
        """Execute the root task to completion (including descendants)."""
        raise NotImplementedError

    def submit(self, runtime: "Runtime", parent: Task, child: Task) -> None:
        """A task was spawned; schedule it according to policy."""
        raise NotImplementedError

    def wait_frame(self, runtime: "Runtime", task: Task, frame: ScopeFrame) -> None:
        """Block (or help) until every child of *frame* has completed."""
        raise NotImplementedError


class Runtime:
    """Shared state and semantics of one task-parallel execution."""

    def __init__(
        self,
        executor: Executor,
        observers: Sequence[RuntimeObserver] = (),
        shadow: Optional[ShadowMemory] = None,
        annotations: Any = None,
        dpst_layout: str = "array",
        build_dpst: Optional[bool] = None,
        lca_cache: bool = True,
        parallel_engine: str = "lca",
        recorder: Any = None,
    ) -> None:
        self.executor = executor
        self.observer = ObserverChain(list(observers))
        if build_dpst is None:
            # Build the DPST whenever any observer is attached: checkers
            # need it and recorded traces should be replayable.  The
            # uninstrumented baseline passes build_dpst=False explicitly.
            build_dpst = bool(self.observer.observers)
        self.dpst: Optional[DPSTBase] = make_dpst(dpst_layout) if build_dpst else None
        if self.dpst is None:
            self.engine = None
        else:
            # Registry resolution: raises UnknownEngineError (a
            # CheckerError *and* ValueError) naming the valid engines.
            self.engine = make_engine(parallel_engine, self.dpst, cache=lca_cache)
        self.shadow = shadow if shadow is not None else ShadowMemory()
        self.locks = LockTable()
        self.run_context = RunContext(
            self.dpst,
            self.engine,
            self.shadow,
            self.locks,
            annotations,
            parallel_engine=parallel_engine,
            recorder=recorder,
        )
        self._lock = threading.RLock()
        self._next_task_id = 0
        self._next_seq = 0
        #: First exception raised by any task (work-stealing executor).
        self.failure: Optional[BaseException] = None
        # Uninstrumented fast path: with no observers and no DPST there is
        # nothing to notify or build, so memory operations reduce to shadow
        # loads/stores.  This models the paper's baseline -- a native
        # binary without instrumentation -- against which slowdowns are
        # measured.  (Instance attributes shadow the class methods.)
        if not self.observer.observers and self.dpst is None:
            self.read = self._read_uninstrumented  # type: ignore[assignment]
            self.write = self._write_uninstrumented  # type: ignore[assignment]

    def _read_uninstrumented(self, task: Task, location: Location) -> Any:
        """Baseline read: straight to shadow memory."""
        return self.shadow.load(location)

    def _write_uninstrumented(self, task: Task, location: Location, value: Any) -> None:
        """Baseline write: straight to shadow memory."""
        self.shadow.store(location, value)

    # -- id/seq allocation ---------------------------------------------------

    def _alloc_task_id(self) -> int:
        self._next_task_id += 1
        return self._next_task_id - 1

    def _alloc_seq(self) -> int:
        self._next_seq += 1
        return self._next_seq - 1

    # -- top-level driving -----------------------------------------------------

    def run(self, body: TaskBody, *args: Any, **kwargs: Any) -> RunContext:
        """Run *body* as the root task and return the populated context."""
        with self._lock:
            root_id = self._alloc_task_id()
            base_node = ROOT_ID if self.dpst is not None else NO_STEP
            root = Task(root_id, None, body, args, kwargs, base_node, None)
            self.run_context.tasks[root_id] = root
        self.observer.on_run_begin(self.run_context)
        started = time.perf_counter()
        try:
            self.executor.run_root(self, root)
        finally:
            self.run_context.elapsed = time.perf_counter() - started
        if self.failure is not None:
            raise self.failure
        self.observer.on_run_end(self.run_context)
        return self.run_context

    def execute_task(self, task: Task) -> None:
        """Run a task body and drain its scopes; called by executors."""
        with self._lock:
            seq = self._alloc_seq()
        self.observer.on_task_begin(TaskBeginEvent(seq, task.task_id))
        context = TaskContext(self, task)
        try:
            task.result = task.body(context, *task.args, **task.kwargs)
            # Implicit sync: a task does not complete until every child
            # (and descendant) has completed.
            while len(task.frames) > 1:
                self._close_top_frame(task)
        finally:
            if task.notify_frame is not None:
                task.notify_frame.child_finished()
        with self._lock:
            seq = self._alloc_seq()
        self.observer.on_task_end(TaskEndEvent(seq, task.task_id))

    # -- task management semantics ----------------------------------------------

    def spawn(
        self,
        parent: Task,
        body: TaskBody,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> Task:
        """Create a child task of *parent* and hand it to the executor."""
        with self._lock:
            parent.current_step = None  # the spawn ends the current step
            frame = parent.top_frame
            if frame.kind is FrameKind.BODY:
                frame = self._push_finish_frame(parent, FrameKind.IMPLICIT)
            if self.dpst is not None:
                async_node = self.dpst.add_node(frame.node, NodeKind.ASYNC)
            else:
                async_node = NO_STEP
            child_id = self._alloc_task_id()
            child = Task(
                child_id,
                parent.task_id,
                body,
                args,
                kwargs,
                async_node,
                frame,
                depth=parent.depth + 1,
            )
            self.run_context.tasks[child_id] = child
            frame.child_started()
            seq = self._alloc_seq()
            event = TaskSpawnEvent(seq, parent.task_id, child_id, async_node)
            self.observer.on_task_spawn(event)
        self.executor.submit(self, parent, child)
        return child

    def sync(self, task: Task) -> None:
        """Wait for the children of the innermost spawn scope."""
        task.current_step = None
        frame = task.top_frame
        if frame.kind is FrameKind.IMPLICIT:
            self._close_top_frame(task)
        elif frame.kind is FrameKind.EXPLICIT:
            # sync inside an open finish block waits for the children
            # spawned so far but keeps the scope open.
            self.executor.wait_frame(self, task, frame)
        # BODY frame: no children were ever spawned into it; no-op.

    def finish_enter(self, task: Task) -> None:
        """Open an explicit (Habanero-style) finish scope."""
        with self._lock:
            task.current_step = None
            self._push_finish_frame(task, FrameKind.EXPLICIT)

    def finish_exit(self, task: Task) -> None:
        """Close the innermost explicit finish scope, draining children."""
        task.current_step = None
        while task.top_frame.kind is FrameKind.IMPLICIT:
            self._close_top_frame(task)
        if task.top_frame.kind is not FrameKind.EXPLICIT:
            raise RuntimeUsageError(
                f"task {task.task_id} exited a finish block it never entered"
            )
        self._close_top_frame(task)

    def _push_finish_frame(self, task: Task, kind: FrameKind) -> ScopeFrame:
        """Push a finish frame (with DPST finish node) onto *task*'s stack."""
        parent_node = task.top_frame.node
        if self.dpst is not None:
            node = self.dpst.add_node(parent_node, NodeKind.FINISH)
        else:
            node = NO_STEP
        frame = ScopeFrame(kind, node)
        task.frames.append(frame)
        return frame

    def _close_top_frame(self, task: Task) -> None:
        """Wait for the top frame's children, then pop it."""
        frame = task.top_frame
        self.executor.wait_frame(self, task, frame)
        with self._lock:
            task.frames.pop()
            task.current_step = None
            seq = self._alloc_seq()
        self.observer.on_sync(SyncEvent(seq, task.task_id, frame.node))

    # -- instrumented memory -------------------------------------------------------

    def _ensure_step(self, task: Task) -> int:
        """The current step node of *task*, creating it lazily.

        Step nodes represent *maximal non-empty* instruction sequences, so
        one is only materialized when the task actually performs an access
        after a task-management construct.
        """
        if self.dpst is None:
            return NO_STEP
        step = task.current_step
        if step is None:
            step = self.dpst.add_node(task.top_frame.node, NodeKind.STEP)
            task.current_step = step
        return step

    def read(self, task: Task, location: Location) -> Any:
        """Instrumented shared-memory read."""
        with self._lock:
            step = self._ensure_step(task)
            seq = self._alloc_seq()
            event = MemoryEvent(
                seq,
                task.task_id,
                step,
                location,
                READ,
                task.lock_state.lockset_tuple(),
            )
            self.observer.on_memory(event)
            return self.shadow.load(location)

    def write(self, task: Task, location: Location, value: Any) -> None:
        """Instrumented shared-memory write."""
        with self._lock:
            step = self._ensure_step(task)
            seq = self._alloc_seq()
            event = MemoryEvent(
                seq,
                task.task_id,
                step,
                location,
                WRITE,
                task.lock_state.lockset_tuple(),
            )
            self.observer.on_memory(event)
            self.shadow.store(location, value)

    # -- instrumented locks -----------------------------------------------------------

    def acquire(self, task: Task, name: str) -> None:
        """Acquire program lock *name* for *task* (blocking)."""
        # Validate before touching the real mutex: re-acquiring a lock the
        # task already holds must raise, not self-deadlock.
        if task.lock_state.holds(name):
            raise RuntimeUsageError(
                f"task {task.task_id} re-acquired lock {name!r} it already holds"
            )
        # Take the real lock outside the runtime lock: another worker may
        # need the runtime lock to make progress toward releasing it.
        self.locks.acquire(name)
        with self._lock:
            versioned = task.lock_state.acquire(name)
            step = self._ensure_step(task)
            seq = self._alloc_seq()
        self.observer.on_acquire(
            AcquireEvent(seq, task.task_id, step, name, versioned)
        )

    def release(self, task: Task, name: str) -> None:
        """Release program lock *name* held by *task*."""
        with self._lock:
            versioned = task.lock_state.release(name)
            step = self._ensure_step(task)
            seq = self._alloc_seq()
        self.locks.release(name)
        self.observer.on_release(
            ReleaseEvent(seq, task.task_id, step, name, versioned)
        )

    def record_failure(self, exc: BaseException) -> None:
        """Remember the first task failure (work-stealing executor)."""
        with self._lock:
            if self.failure is None:
                self.failure = exc


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class SerialExecutor(Executor):
    """Single-threaded executor with a configurable scheduling policy.

    ``child_first``
        Run the child immediately at the spawn point (Cilk serial elision).
    ``help_first``
        Defer children to the frame's pending queue; run them when the
        frame is waited.  ``order`` selects FIFO (spawn order) or LIFO
        (reverse) draining.
    """

    def __init__(self, policy: str = "child_first", order: str = "fifo") -> None:
        if policy not in ("child_first", "help_first"):
            raise ValueError(f"unknown policy {policy!r}")
        if order not in ("fifo", "lifo"):
            raise ValueError(f"unknown order {order!r}")
        self.policy = policy
        self.order = order
        self.name = f"serial/{policy}" + ("" if policy == "child_first" else f"/{order}")

    def run_root(self, runtime: Runtime, root: Task) -> None:
        runtime.execute_task(root)

    def submit(self, runtime: Runtime, parent: Task, child: Task) -> None:
        if self.policy == "child_first":
            runtime.execute_task(child)
        else:
            child.notify_frame.pending.append(child)

    def wait_frame(self, runtime: Runtime, task: Task, frame: ScopeFrame) -> None:
        pending = frame.pending
        while pending:
            if self.order == "fifo":
                child = pending.popleft()
            else:
                child = pending.pop()
            runtime.execute_task(child)


class RandomOrderExecutor(Executor):
    """Seeded serial executor that randomizes scheduling decisions.

    At each spawn the child either runs immediately (probability
    ``eager_probability``) or is deferred; deferred children are drained in
    shuffled order.  Useful for diversifying observed traces in tests: the
    checker must return the same verdict for every seed.
    """

    def __init__(self, seed: int = 0, eager_probability: float = 0.5) -> None:
        self.rng = random.Random(seed)
        self.eager_probability = eager_probability
        self.name = f"random(seed={seed})"

    def run_root(self, runtime: Runtime, root: Task) -> None:
        runtime.execute_task(root)

    def submit(self, runtime: Runtime, parent: Task, child: Task) -> None:
        if self.rng.random() < self.eager_probability:
            runtime.execute_task(child)
        else:
            child.notify_frame.pending.append(child)

    def wait_frame(self, runtime: Runtime, task: Task, frame: ScopeFrame) -> None:
        pending = frame.pending
        while pending:
            index = self.rng.randrange(len(pending))
            pending.rotate(-index)
            child = pending.popleft()
            runtime.execute_task(child)


class WorkStealingExecutor(Executor):
    """Thread-pool executor with per-worker deques and random stealing.

    Mirrors the TBB/Cilk scheduler shape: a spawning worker pushes the
    child onto the *bottom* of its own deque and continues the parent;
    idle workers steal from the *top* of a random victim.  A worker that
    reaches a sync point helps by executing tasks from its own deque (or
    stolen ones) until the awaited scope has no outstanding children.

    Under CPython the GIL serializes the actual computation, so this
    executor exists to exercise the checkers under true interleaving, not
    to provide speedup (see DESIGN.md substitutions).
    """

    _tls = threading.local()

    def __init__(self, workers: int = 4, seed: int = 0) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.seed = seed
        self.name = f"worksteal(workers={workers})"
        self._deques: List[Deque[Task]] = []
        self._deque_guard = threading.Lock()
        self._work_available = threading.Condition(self._deque_guard)
        self._shutdown = False
        self._root_done = threading.Event()

    # -- deque plumbing ---------------------------------------------------

    def _my_index(self) -> Optional[int]:
        return getattr(self._tls, "worker_index", None)

    def _push(self, worker: int, task: Task) -> None:
        with self._work_available:
            self._deques[worker].append(task)
            self._work_available.notify()

    def _pop_local(self, worker: int) -> Optional[Task]:
        with self._deque_guard:
            own = self._deques[worker]
            if own:
                return own.pop()
        return None

    def _steal(self, thief: int, rng: random.Random) -> Optional[Task]:
        with self._deque_guard:
            victims = [i for i in range(self.workers) if i != thief and self._deques[i]]
            if not victims:
                return None
            victim = rng.choice(victims)
            return self._deques[victim].popleft()

    # -- executor interface ---------------------------------------------------

    def run_root(self, runtime: Runtime, root: Task) -> None:
        self._deques = [deque() for _ in range(self.workers)]
        self._shutdown = False
        self._root_done.clear()
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(runtime, index),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        self._push(0, root)
        self._root_done.wait()
        with self._work_available:
            self._shutdown = True
            self._work_available.notify_all()
        for thread in threads:
            thread.join()

    def submit(self, runtime: Runtime, parent: Task, child: Task) -> None:
        worker = self._my_index()
        self._push(worker if worker is not None else 0, child)

    def wait_frame(self, runtime: Runtime, task: Task, frame: ScopeFrame) -> None:
        worker = self._my_index()
        rng = getattr(self._tls, "rng", None)
        if rng is None:
            rng = random.Random(self.seed)
        while True:
            with frame.done:
                if frame.outstanding <= 0:
                    return
            stolen = None
            if worker is not None:
                stolen = self._pop_local(worker) or self._steal(worker, rng)
            if stolen is not None:
                self._run_task(runtime, stolen)
                continue
            with frame.done:
                if frame.outstanding <= 0:
                    return
                frame.done.wait(timeout=0.002)

    # -- worker body ------------------------------------------------------------

    def _run_task(self, runtime: Runtime, task: Task) -> None:
        is_root = task.parent_id is None
        try:
            runtime.execute_task(task)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the driver
            runtime.record_failure(exc)
        finally:
            if is_root:
                self._root_done.set()

    def _worker_loop(self, runtime: Runtime, index: int) -> None:
        self._tls.worker_index = index
        self._tls.rng = random.Random((self.seed, index).__hash__())
        rng = self._tls.rng
        while True:
            task = self._pop_local(index) or self._steal(index, rng)
            if task is not None:
                self._run_task(runtime, task)
                continue
            with self._work_available:
                if self._shutdown:
                    return
                self._work_available.wait(timeout=0.01)
