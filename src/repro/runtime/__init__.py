"""Task-parallel runtime with built-in instrumentation.

This package plays the role of Intel TBB *plus* the paper's LLVM
instrumentation pass: programs are ordinary Python functions written
against the :class:`~repro.runtime.task.TaskContext` API
(``spawn``/``sync``/``finish`` for task management, ``read``/``write`` for
shared memory, ``lock`` for synchronization), and the runtime

* maintains the dynamic program structure tree while tasks execute,
* routes every shared-memory access through shadow memory, and
* notifies attached :class:`~repro.runtime.observer.RuntimeObserver`
  instances (the atomicity checkers, trace recorders, statistics
  collectors) of every event of interest.

Three executors are provided:

* :class:`~repro.runtime.executor.SerialExecutor` -- depth-first ("child
  first", the Cilk serial elision) or "help first" (continuation first)
  serial schedules;
* :class:`~repro.runtime.executor.WorkStealingExecutor` -- a real
  thread-pool with per-worker deques and random stealing, mirroring the
  TBB scheduler (note: CPython's GIL serializes the actual computation, so
  this executor demonstrates correctness under true concurrency rather
  than speedup);
* :class:`~repro.runtime.executor.RandomOrderExecutor` -- a seeded serial
  executor that picks a random ready task at every scheduling point, used
  to diversify observed traces in tests.
"""

from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.runtime.locks import LockTable
from repro.runtime.observer import (
    ObserverChain,
    RuntimeObserver,
    StatsObserver,
    TraceRecorder,
)
from repro.runtime.shadow import ShadowMemory
from repro.runtime.task import Task, TaskContext
from repro.runtime.executor import (
    Runtime,
    RunContext,
    SerialExecutor,
    RandomOrderExecutor,
    WorkStealingExecutor,
)
from repro.runtime.program import TaskProgram, RunResult, run_program
from repro.runtime.algorithms import (
    parallel_for,
    parallel_invoke,
    parallel_pipeline,
    parallel_reduce,
)

__all__ = [
    "parallel_for",
    "parallel_invoke",
    "parallel_pipeline",
    "parallel_reduce",
    "AcquireEvent",
    "MemoryEvent",
    "ReleaseEvent",
    "SyncEvent",
    "TaskBeginEvent",
    "TaskEndEvent",
    "TaskSpawnEvent",
    "LockTable",
    "ObserverChain",
    "RuntimeObserver",
    "StatsObserver",
    "TraceRecorder",
    "ShadowMemory",
    "Task",
    "TaskContext",
    "Runtime",
    "RunContext",
    "SerialExecutor",
    "RandomOrderExecutor",
    "WorkStealingExecutor",
    "TaskProgram",
    "RunResult",
    "run_program",
]
