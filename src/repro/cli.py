"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``check MODULE:FUNC``
    Import a task body and run a checker over it (the CLI analogue of the
    prototype's instrument-and-run flow).
``suite``
    Run the 36-program violation suite and print a result table.
``workload NAME``
    Run one of the 13 benchmark kernels under a checker and print its
    statistics and report.
``dpst MODULE:FUNC``
    Execute a program and print its dynamic program structure tree.
``record MODULE:FUNC -o FILE`` / ``replay FILE``
    Serialize an execution trace (monolithic JSON or streaming JSONL,
    picked by extension or ``--format``) / replay a saved trace through a
    checker.
``check-trace FILE --jobs N``
    The offline pipeline: check a recorded trace file through the unified
    :class:`~repro.session.CheckSession` API, optionally sharded by
    location across N worker processes.
``lint MODULE:FUNC`` / ``lint --spec FILE``
    The static atomicity lint pass (:mod:`repro.static`): builds the
    static series-parallel skeleton, runs MHP + lockset analysis, and
    prints candidate unserializable triples and structural ``SAVnnn``
    diagnostics without executing the program.  ``--json`` emits the
    machine-readable report.  ``check`` and ``check-trace`` accept
    ``--static-prefilter`` to drop events on locations the lint pass
    proves schedule-serial (exact skeletons only; refusals and skip
    counts are always printed).
``stats FILE``
    Summarize a ``--metrics`` JSON snapshot (counters, spans, per-shard
    timings) or, given a trace file, its basic shape.
``table1`` / ``fig13`` / ``fig14`` / ``ablation``
    The evaluation harnesses (thin wrappers over :mod:`repro.bench`).

``check`` and ``check-trace`` accept ``--metrics OUT.json`` to collect
pipeline observability (see :mod:`repro.obs`) and write the merged
snapshot; ``repro stats OUT.json`` renders it.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Any, Callable, List, Optional, Sequence

from repro.checker import make_checker
from repro.runtime import (
    RandomOrderExecutor,
    SerialExecutor,
    TaskProgram,
    WorkStealingExecutor,
    run_program,
)

CHECKER_NAMES = (
    "optimized",
    "basic",
    "velodrome",
    "racedetector",
    "velodrome+explorer",
    "regiontrack",
)


def _load_callable(spec: str) -> Callable[..., Any]:
    """Resolve ``package.module:function`` to the function object."""
    if ":" not in spec:
        raise SystemExit(f"expected MODULE:FUNC, got {spec!r}")
    module_name, _, func_name = spec.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise SystemExit(f"{module_name} has no function {func_name!r}") from exc


def _load_lint_target(spec: str) -> Any:
    """Resolve ``MODULE:FUNC`` to something :func:`repro.static.lint_program`
    accepts.

    The attribute may be a task body taking ``ctx``, a zero-argument
    builder returning a :class:`TaskProgram` (the workload/example
    convention), or a :class:`TaskProgram` instance.
    """
    import inspect

    obj = _load_callable(spec)
    if isinstance(obj, TaskProgram):
        return obj
    if not callable(obj):
        raise SystemExit(f"{spec} is neither a callable nor a TaskProgram")
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return obj
    required = [
        param
        for param in signature.parameters.values()
        if param.default is param.empty
        and param.kind
        in (param.POSITIONAL_ONLY, param.POSITIONAL_OR_KEYWORD)
    ]
    if required:
        return obj  # takes ctx (or more): treat as a task body
    built = obj()
    if isinstance(built, TaskProgram):
        return built
    raise SystemExit(
        f"{spec} takes no ctx parameter but did not build a TaskProgram "
        f"(got {type(built).__name__})"
    )


def _make_executor(name: str, seed: int, workers: int):
    if name == "serial":
        return SerialExecutor()
    if name == "help-first":
        return SerialExecutor(policy="help_first")
    if name == "random":
        return RandomOrderExecutor(seed=seed)
    if name == "worksteal":
        return WorkStealingExecutor(workers=workers)
    raise SystemExit(f"unknown executor {name!r}")


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checker", choices=CHECKER_NAMES, default="optimized",
        help="analysis to attach (default: optimized)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "help-first", "random", "worksteal"),
        default="serial", help="scheduling strategy (default: serial)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random executor seed")
    parser.add_argument("--workers", type=int, default=4, help="work-stealing pool size")
    parser.add_argument(
        "--dpst-layout", choices=("array", "linked"), default="array",
        help="DPST representation (default: array)",
    )
    _add_engine_option(parser)


def _add_engine_option(parser: argparse.ArgumentParser) -> None:
    from repro.dpst.engines import available_engines

    choices = available_engines()
    parser.add_argument(
        "--engine", choices=choices, default="lca",
        help="parallelism-query engine: %s (default: lca)" % ", ".join(choices),
    )


def _metrics_recorder(args: argparse.Namespace):
    """A collecting recorder when ``--metrics PATH`` was given, else None."""
    if not getattr(args, "metrics", None):
        return None
    from repro.obs import MetricsRecorder

    return MetricsRecorder()


def _dump_metrics(recorder, args: argparse.Namespace) -> None:
    if recorder is None:
        return
    recorder.snapshot().dump(args.metrics)
    print(f"metrics written to {args.metrics}")


def _print_prefilter(session, recorder) -> None:
    """Render the outcome of a ``--static-prefilter`` request.

    Skipping is never silent: this prints either the applied filter with
    its dropped-event count or the reason filtering was refused.
    """
    info = session.prefilter_info
    if info is None:
        return
    poisoned = info.get("poisoned") or {}
    if not info["applied"]:
        print(f"static prefilter: disabled -- {info['reason']}")
        for location, reasons in poisoned.items():
            print(f"  poisoned {location}: {'; '.join(reasons)}")
        return
    skipped = 0
    if recorder is not None and recorder.enabled:
        skipped = int(
            recorder.snapshot().counters.get(
                "static.prefilter.events_skipped", 0
            )
        )
    locations = ", ".join(info["locations"]) or "-"
    print(
        f"static prefilter: {info['reason']}; "
        f"dropped {skipped} event(s) on [{locations}]"
    )
    for location, reasons in poisoned.items():
        print(f"  poisoned {location}: {'; '.join(reasons)}")


def _print_cache(session) -> None:
    """Render the outcome of a ``--cache-dir`` request.

    Bypassing is never silent, mirroring :func:`_print_prefilter`.  Every
    line carries the stable ``result cache:`` prefix so report output can
    be compared across runs with the cache lines filtered out.
    """
    info = session.cache_info
    if info is None:
        return
    if not info["applied"]:
        print(f"result cache: bypassed -- {info['reason']}")
    elif info["hit"]:
        print(f"result cache: hit {info['key'][:12]}")
    else:
        print(f"result cache: miss {info['key'][:12]} (stored)")


def _check_with_prefilter(body, args: argparse.Namespace, recorder) -> int:
    """The ``check --static-prefilter`` path, routed through CheckSession."""
    from repro.obs import MetricsRecorder
    from repro.session import CheckSession

    if args.dpst_layout != "array":
        raise SystemExit(
            "--static-prefilter checks through CheckSession, which uses "
            "the array DPST layout; drop --dpst-layout"
        )
    if recorder is None:
        # A private recorder so the skipped-event count can be reported.
        recorder = MetricsRecorder()
    session = CheckSession(
        TaskProgram(body),
        checker=args.checker,
        engine=args.engine,
        executor=_make_executor(args.executor, args.seed, args.workers),
        recorder=recorder,
    )
    report = session.check(static_prefilter=True)
    print(report.describe())
    _print_prefilter(session, recorder)
    result = session.run_result
    if args.stats and result is not None and result.stats is not None:
        stats = result.stats
        print(
            f"\ntasks={stats.tasks} accesses={stats.memory_events} "
            f"dpst_nodes={stats.dpst_nodes} lca_queries={stats.lca_queries}"
        )
    _dump_metrics(recorder if getattr(args, "metrics", None) else None, args)
    return 1 if report else 0


def cmd_check(args: argparse.Namespace) -> int:
    body = _load_callable(args.program)
    recorder = _metrics_recorder(args)
    if args.static_prefilter:
        return _check_with_prefilter(body, args, recorder)
    checker = make_checker(args.checker)
    result = run_program(
        TaskProgram(body),
        executor=_make_executor(args.executor, args.seed, args.workers),
        observers=[checker],
        dpst_layout=args.dpst_layout,
        parallel_engine=args.engine,
        collect_stats=True,
        recorder=recorder,
    )
    print(result.report().describe())
    if args.stats and result.stats is not None:
        stats = result.stats
        print(
            f"\ntasks={stats.tasks} accesses={stats.memory_events} "
            f"dpst_nodes={stats.dpst_nodes} lca_queries={stats.lca_queries}"
        )
    _dump_metrics(recorder, args)
    return 1 if result.report() else 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.bench.reporting import render_table
    from repro.suite import all_cases

    engine = getattr(args, "engine", "lca")
    cache_dir = getattr(args, "cache_dir", None)
    cache_hits = cache_misses = cache_bypasses = 0
    rows: List[List[str]] = []
    mismatches = 0
    for case in all_cases():
        if args.category and case.category != args.category:
            continue
        if cache_dir:
            # Record-then-check so the run is content-addressable: the
            # deterministic executor replays each case to the same trace,
            # making a repeated suite run a pure hash lookup.  The
            # program's own annotations ride along; non-trivial ones
            # bypass the cache (counted below) rather than mis-keying.
            from repro.session import CheckSession

            program = case.build()
            result = run_program(
                program, record_trace=True, parallel_engine=engine
            )
            session = CheckSession(
                result.trace,
                checker=args.checker,
                engine=engine,
                annotations=program.annotations,
            )
            report = session.check(cache_dir=cache_dir)
            found = set(report.locations())
            info = session.cache_info or {}
            if info.get("hit"):
                cache_hits += 1
            elif info.get("applied"):
                cache_misses += 1
            else:
                cache_bypasses += 1
        else:
            checker = make_checker(args.checker)
            result = run_program(
                case.build(),
                observers=[checker],
                parallel_engine=engine,
            )
            found = set(result.report().locations())
        ok = found == set(case.expected)
        mismatches += 0 if ok else 1
        rows.append(
            [
                case.name,
                case.category,
                "violating" if case.violating else "safe",
                str(len(found)),
                "ok" if ok else "MISMATCH",
            ]
        )
    print(
        render_table(
            ["case", "category", "expectation", "reported", "verdict"],
            rows,
            title=f"violation suite under {args.checker!r}",
        )
    )
    print(f"\n{len(rows)} case(s), {mismatches} mismatch(es)")
    if cache_dir:
        print(
            f"result cache: {cache_hits} hit(s), {cache_misses} miss(es), "
            f"{cache_bypasses} bypassed"
        )
    return 1 if mismatches else 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import get

    spec = get(args.name)
    checker = make_checker(args.checker)
    result = run_program(
        spec.build(args.scale),
        executor=_make_executor(args.executor, args.seed, args.workers),
        observers=[checker],
        dpst_layout=args.dpst_layout,
        parallel_engine=args.engine,
        collect_stats=True,
    )
    stats = result.stats
    print(f"workload {spec.name} (scale {args.scale}): {spec.description}")
    print(
        f"elapsed={result.elapsed * 1000:.1f}ms tasks={stats.tasks} "
        f"accesses={stats.memory_events} locations={result.shadow.unique_locations} "
        f"dpst_nodes={stats.dpst_nodes} lca_queries={stats.lca_queries} "
        f"unique={stats.unique_lca_percent:.1f}%"
    )
    print(result.report().describe())
    return 1 if result.report() else 0


def cmd_dpst(args: argparse.Namespace) -> int:
    body = _load_callable(args.program)
    result = run_program(TaskProgram(body), build_dpst=True, record_trace=True)
    print(result.dpst.dump())
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    from repro.trace.serialize import dump_trace

    body = _load_callable(args.program)
    result = run_program(
        TaskProgram(body),
        executor=_make_executor(args.executor, args.seed, args.workers),
        parallel_engine=args.engine,
        record_trace=True,
    )
    dump_trace(result.trace, args.output, format=args.format)
    print(
        f"recorded {len(result.trace)} events "
        f"({len(result.trace.memory_events())} memory) to {args.output}"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.trace.replay import replay_trace
    from repro.trace.serialize import load_trace

    trace = load_trace(args.trace)
    checker = make_checker(args.checker)
    report = replay_trace(trace, checker)
    print(report.describe())
    return 1 if report else 0


def cmd_check_trace(args: argparse.Namespace) -> int:
    from repro.session import CheckSession

    jobs = None if args.jobs == 0 else args.jobs
    recorder = _metrics_recorder(args)
    prefilter: Any = False
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume needs --checkpoint DIR")
    if args.static_prefilter:
        # Offline traces carry no program text, so the prefilter flag
        # names the program (MODULE:FUNC) the trace was recorded from.
        prefilter = _load_lint_target(args.static_prefilter)
    if args.window is not None and not args.streaming:
        raise SystemExit("--window needs --streaming")
    if recorder is None and (
        args.static_prefilter or args.lenient or args.streaming
    ):
        # A private recorder so skip/sweep counts can be reported even
        # without --metrics (skipping and compaction are never silent).
        from repro.obs import MetricsRecorder

        recorder = MetricsRecorder()
    session = CheckSession(
        args.trace, checker=args.checker, jobs=jobs, engine=args.engine,
        recorder=recorder, strict=not args.lenient,
    )
    report = session.check(
        static_prefilter=prefilter,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
        on_shard_failure=args.on_shard_failure,
        max_retries=args.retries,
        shard_timeout=args.shard_timeout,
        start_method=args.start_method,
        cache_dir=args.cache_dir,
        streaming=args.streaming,
        window=args.window,
    )
    print(report.describe())
    skipped = session.lines_skipped
    if not skipped and recorder is not None and recorder.enabled:
        # jobs>1: workers scan the file themselves; the count comes back
        # through the merged metrics rather than the parent's reader.
        skipped = int(
            recorder.snapshot().counters.get("trace.lines_skipped", 0)
        )
    if skipped:
        print(
            f"lenient mode: skipped {skipped} undecodable trace line(s); "
            "the verdict covers the decodable events only"
        )
    _print_prefilter(session, recorder)
    _print_cache(session)
    _print_streaming(args, recorder)
    _dump_metrics(recorder if getattr(args, "metrics", None) else None, args)
    return 1 if report else 0


def _print_streaming(args: argparse.Namespace, recorder) -> None:
    """Render a ``--streaming`` run's window/compaction summary.

    One line with the stable ``streaming:`` prefix (filter it, like the
    ``result cache:`` lines, when diffing reports across modes).
    """
    if not getattr(args, "streaming", False):
        return
    from repro.checker.streaming import DEFAULT_WINDOW

    window = args.window
    shown = (
        "unbounded"
        if window == 0
        else str(window if window is not None else DEFAULT_WINDOW)
    )
    if recorder is None or not recorder.enabled:
        print(f"streaming: window={shown}")
        return
    counters = recorder.snapshot().counters
    print(
        "streaming: window={} -- {} event(s), {} sweep(s), "
        "{} cell(s) evicted, peak window {}".format(
            shown,
            int(counters.get("streaming.events", 0)),
            int(counters.get("streaming.compactions", 0)),
            int(counters.get("streaming.evicted", 0)),
            int(counters.get("streaming.peak_window", 0)),
        )
    )


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.static import lint_program, lint_spec

    if bool(args.program) == bool(args.spec):
        raise SystemExit("lint needs exactly one of MODULE:FUNC or --spec FILE")
    if args.update_baseline and not args.baseline:
        raise SystemExit("--update-baseline needs --baseline FILE")
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec_tree = json.load(handle)
        report = lint_spec(spec_tree, target=args.spec)
    else:
        target = _load_lint_target(args.program)
        report = lint_program(target, target=args.program)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    if args.sarif:
        from repro.static import report_to_sarif

        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(report_to_sarif(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"SARIF log written to {args.sarif}")
    gated = report.diagnostics
    if args.baseline:
        from repro.static import BaselineError, compare_to_baseline, update_baseline

        if args.update_baseline:
            data = update_baseline([report], args.baseline)
            print(
                f"baseline {args.baseline} updated: "
                f"{len(data['findings'])} known finding(s)"
            )
            return 0
        try:
            new, stale = compare_to_baseline([report], args.baseline)
        except BaselineError as error:
            raise SystemExit(str(error)) from error
        gated = [diagnostic for _, diagnostic in new]
        print(
            f"baseline {args.baseline}: {len(report.diagnostics)} finding(s), "
            f"{len(gated)} new, {len(stale)} stale baseline entr(y/ies)"
        )
        for diagnostic in gated:
            print(f"  NEW {diagnostic.describe()}")
    return _lint_exit_code(gated, args.fail_on)


def _lint_exit_code(diagnostics, fail_on: str) -> int:
    """``--fail-on`` semantics: the gate severity and everything above."""
    if fail_on == "never":
        return 0
    if fail_on == "warning":
        return (
            1
            if any(d.severity in ("error", "warning") for d in diagnostics)
            else 0
        )
    return 1 if any(d.severity == "error" for d in diagnostics) else 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json

    from repro.obs import is_metrics_dict

    # A --metrics snapshot is a small JSON object stamped with the
    # "repro-metrics/1" schema; anything else is treated as a trace.
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        data = None
    if isinstance(data, dict) and is_metrics_dict(data):
        return _print_metrics_stats(data)
    return _print_trace_stats(args.file)


def _print_metrics_stats(data: dict) -> int:
    from repro.obs import MetricsSnapshot

    snapshot = MetricsSnapshot.from_dict(data)
    print(f"metrics snapshot ({data.get('schema')})")
    if snapshot.counters:
        print("\ncounters:")
        for name in sorted(snapshot.counters):
            print(f"  {name:<42} {snapshot.counters[name]}")
    if snapshot.gauges:
        print("\ngauges:")
        for name in sorted(snapshot.gauges):
            print(f"  {name:<42} {snapshot.gauges[name]:g}")
    if snapshot.histograms:
        print("\nhistograms:")
        for name in sorted(snapshot.histograms):
            hist = snapshot.histograms[name]
            print(
                f"  {name:<42} n={hist.count} mean={hist.mean:g} "
                f"min={hist.min:g} max={hist.max:g}"
            )
    if snapshot.spans:
        print("\nspans:")
        for path in sorted(snapshot.spans):
            span = snapshot.spans[path]
            print(
                f"  {path:<42} n={span.count} total={span.total_s * 1000:.1f}ms"
            )
    if snapshot.shards:
        print(f"\nshards: {len(snapshot.shards)}")
        for shard in snapshot.shards:
            counters = shard.get("counters", {})
            gauges = shard.get("gauges", {})
            print(
                f"  shard {shard.get('shard')}: "
                f"events={counters.get('trace.events.routed', 0)} "
                f"violations={counters.get('report.violations', 0)} "
                f"elapsed={gauges.get('worker.elapsed_s', 0.0):.3f}s"
            )
    return 0


def _print_trace_stats(path: str) -> int:
    from repro.runtime.events import MemoryEvent
    from repro.trace.serialize import open_trace

    reader = open_trace(path)
    events = 0
    memory = 0
    tasks = set()
    locations = set()
    for event in reader.events():
        events += 1
        if isinstance(event, MemoryEvent):
            memory += 1
            tasks.add(event.task)
            locations.add(event.location)
    dpst = reader.dpst
    print(f"trace {path}")
    print(
        f"events={events} memory_events={memory} tasks={len(tasks)} "
        f"locations={len(locations)} "
        f"dpst_nodes={0 if dpst is None else len(dpst)}"
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run every analysis on one program and print a comparison matrix."""
    from repro.bench.reporting import render_table
    from repro.checker import (
        BasicAtomicityChecker,
        ExploringVelodrome,
        OptAtomicityChecker,
        RaceDetector,
        VelodromeChecker,
    )

    body = _load_callable(args.program)
    rows: List[List[str]] = []
    analyses = [
        ("optimized (paper)", OptAtomicityChecker(mode="paper")),
        ("optimized (thorough)", OptAtomicityChecker(mode="thorough")),
        ("basic (reference)", BasicAtomicityChecker()),
        ("velodrome (this trace)", VelodromeChecker()),
        ("velodrome + explorer", ExploringVelodrome()),
        ("race detector", RaceDetector()),
    ]
    any_violation = False
    for label, analysis in analyses:
        result = run_program(TaskProgram(body), observers=[analysis])
        if isinstance(analysis, RaceDetector):
            found = sorted(str(l) for l in analysis.race_locations())
            count = len(analysis.races)
        else:
            found = sorted(str(l) for l in result.report().locations())
            count = len(result.report())
        if count and not isinstance(analysis, RaceDetector):
            any_violation = True
        extra = ""
        if isinstance(analysis, ExploringVelodrome):
            extra = f"{analysis.schedules_explored} schedules"
        rows.append([label, str(count), ", ".join(found) or "-", extra])
    print(
        render_table(
            ["analysis", "findings", "locations", "notes"],
            rows,
            title=f"all analyses on {args.program}",
        )
    )
    return 1 if any_violation else 0


def cmd_coverage(args: argparse.Namespace) -> int:
    from repro.static import analyze_function, check_trace_coverage

    body = _load_callable(args.program)
    result = run_program(
        TaskProgram(body),
        executor=_make_executor(args.executor, args.seed, args.workers),
        record_trace=True,
    )
    static = analyze_function(body)
    report = check_trace_coverage(static, result.trace)
    print(static.describe())
    print()
    print(report.describe())
    return 0 if report.complete else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench import table1

    table1.main([str(args.scale)] if args.scale else [])
    return 0


def cmd_fig13(args: argparse.Namespace) -> int:
    from repro.bench import fig13

    fig13.main([str(args.scale or 2), str(args.repeats)])
    return 0


def cmd_fig14(args: argparse.Namespace) -> int:
    from repro.bench import fig14

    fig14.main([str(args.scale or 2), str(args.repeats)])
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: generate programs, cross-check every config.

    Exit status 1 on any oracle disagreement (the fuzz-smoke CI job keys
    off it); with ``--shrink`` every disagreement is also minimized and
    written next to ``--report-dir`` as a ready-to-paste pytest module.
    """
    import json
    import os

    from repro.fuzz import FuzzConfig, run_campaign

    config = FuzzConfig(
        tasks=args.tasks,
        depth=args.depth,
        locations=args.locations,
        locks=args.locks,
        lock_density=args.lock_density,
        seed=args.seed,
    )
    recorder = _metrics_recorder(args)
    progress = None
    if args.verbose:
        def progress(index: int, outcome) -> None:
            status = "ok" if outcome.ok else "DISAGREEMENT"
            print(
                f"  run {index + 1}/{args.runs} seed={outcome.seed} "
                f"events={outcome.events} {status}"
            )

    summary = run_campaign(
        config=config,
        runs=args.runs,
        base_seed=args.seed,
        jobs=args.jobs,
        shrink=args.shrink,
        recorder=recorder,
        progress=progress,
        engine=args.engine,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=2, sort_keys=True)
        print(f"campaign summary written to {args.json}")
    print(summary.describe())
    if summary.reproducers:
        os.makedirs(args.report_dir, exist_ok=True)
        for seed, (result, source) in summary.reproducers.items():
            path = os.path.join(
                args.report_dir, f"reproducer_seed_{seed}.py"
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source)
            print(f"reproducer written to {path} ({result.describe()})")
    _dump_metrics(recorder, args)
    return 0 if summary.ok else 1


def cmd_ablation(args: argparse.Namespace) -> int:
    from repro.bench import ablation

    ablation.main([args.which] + ([str(args.scale)] if args.scale else []))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atomicity violation checking for task parallel programs "
        "(CGO'16 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="check a task body MODULE:FUNC")
    check.add_argument("program", help="import path, e.g. mypkg.mymod:main")
    check.add_argument("--stats", action="store_true", help="print run statistics")
    check.add_argument(
        "--metrics", metavar="OUT.json", default=None,
        help="collect observability metrics and write the snapshot here",
    )
    check.add_argument(
        "--static-prefilter", action="store_true",
        help="lint the body first and skip locations proven "
        "schedule-serial (refused, with the reason printed, unless the "
        "static skeleton is exact)",
    )
    _add_run_options(check)
    check.set_defaults(handler=cmd_check)

    suite = commands.add_parser("suite", help="run the 36-program violation suite")
    suite.add_argument("--category", help="restrict to one category")
    suite.add_argument("--checker", choices=CHECKER_NAMES, default="optimized")
    suite.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed result cache: record each case's trace "
        "and serve repeat checks as hash lookups",
    )
    _add_engine_option(suite)
    suite.set_defaults(handler=cmd_suite)

    workload = commands.add_parser("workload", help="run a benchmark kernel")
    workload.add_argument("name", help="workload name (see repro.workloads)")
    workload.add_argument("--scale", type=int, default=1)
    _add_run_options(workload)
    workload.set_defaults(handler=cmd_workload)

    dpst = commands.add_parser("dpst", help="print a program's DPST")
    dpst.add_argument("program", help="import path, e.g. mypkg.mymod:main")
    dpst.set_defaults(handler=cmd_dpst)

    record = commands.add_parser("record", help="record a trace to a file")
    record.add_argument("program")
    record.add_argument("-o", "--output", required=True)
    record.add_argument(
        "--format", choices=("auto", "json", "jsonl", "columnar"),
        default="auto",
        help="serialization format; auto picks JSONL for .jsonl/.ndjson "
        "paths and binary columnar (v3) for .trc/.v3 paths",
    )
    _add_run_options(record)
    record.set_defaults(handler=cmd_record)

    replay = commands.add_parser("replay", help="replay a recorded trace")
    replay.add_argument("trace")
    replay.add_argument("--checker", choices=CHECKER_NAMES, default="optimized")
    replay.set_defaults(handler=cmd_replay)

    check_trace = commands.add_parser(
        "check-trace",
        help="check a recorded trace file, optionally sharded over N processes",
    )
    check_trace.add_argument(
        "trace", help="trace file (JSON, JSONL, or columnar .trc)"
    )
    check_trace.add_argument(
        "--checker", choices=CHECKER_NAMES, default="optimized",
        help="analysis to run (default: optimized)",
    )
    check_trace.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for location-sharded checking "
        "(default: 1 = in-process; 0 = one per CPU)",
    )
    check_trace.add_argument(
        "--metrics", metavar="OUT.json", default=None,
        help="collect pipeline metrics (merged counters + per-shard spans) "
        "and write the snapshot here",
    )
    check_trace.add_argument(
        "--static-prefilter", metavar="MODULE:FUNC", default=None,
        help="lint the named program (the one this trace was recorded "
        "from) and skip locations proven schedule-serial",
    )
    check_trace.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="persist each completed shard's report under DIR so an "
        "interrupted run can be resumed",
    )
    check_trace.add_argument(
        "--resume", action="store_true",
        help="reuse completed shards from --checkpoint DIR (same jobs "
        "count and checker required); only the rest is re-checked",
    )
    check_trace.add_argument(
        "--on-shard-failure", choices=("retry", "inline", "raise"),
        default="retry",
        help="crashed/hung worker handling: bounded retry (default), "
        "degrade to in-process checking, or abort",
    )
    check_trace.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra worker attempts per shard before giving up (default: 2)",
    )
    check_trace.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="kill a shard attempt exceeding this wall-clock budget "
        "(default: no timeout)",
    )
    check_trace.add_argument(
        "--lenient", action="store_true",
        help="skip (and count) undecodable trace lines instead of "
        "aborting; the skip count is always printed",
    )
    check_trace.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for workers (default: fork "
        "where available)",
    )
    check_trace.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed result cache: serve this check as a hash "
        "lookup when the same trace/checker/engine was seen before "
        "(bypasses are printed, never silent)",
    )
    check_trace.add_argument(
        "--streaming", action="store_true",
        help="check incrementally with bounded memory: events stream "
        "through a windowed checker that compacts dead metadata instead "
        "of materializing the trace (same report as offline)",
    )
    check_trace.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="events between streaming compaction sweeps (default: 4096; "
        "0 = never compact); needs --streaming",
    )
    _add_engine_option(check_trace)
    check_trace.set_defaults(handler=cmd_check_trace)

    lint = commands.add_parser(
        "lint",
        help="static atomicity lint: MHP + lockset analysis, candidate "
        "unserializable triples, SAVnnn diagnostics",
    )
    lint.add_argument(
        "program", nargs="?", default=None,
        help="import path of a task body, TaskProgram, or zero-argument "
        "builder, e.g. mypkg.mymod:main",
    )
    lint.add_argument(
        "--spec", metavar="FILE", default=None,
        help="lint a JSON generator spec tree instead of a MODULE:FUNC",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit the JSON report"
    )
    lint.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="write a SARIF 2.1.0 log (SAV rule metadata included) to FILE",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare findings against a known-findings baseline; only "
        "diagnostics absent from it count toward --fail-on",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE from the current findings (exit 0)",
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "never"), default="error",
        help="exit 1 on diagnostics at or above this severity "
        "(default: error)",
    )
    lint.set_defaults(handler=cmd_lint)

    stats = commands.add_parser(
        "stats",
        help="summarize a --metrics snapshot or a trace file",
    )
    stats.add_argument("file", help="metrics JSON or trace file")
    stats.set_defaults(handler=cmd_stats)

    compare = commands.add_parser(
        "compare", help="run every analysis on one program side by side"
    )
    compare.add_argument("program")
    compare.set_defaults(handler=cmd_compare)

    coverage = commands.add_parser(
        "coverage",
        help="validate the single-trace completeness precondition "
        "(static access set vs observed trace)",
    )
    coverage.add_argument("program")
    _add_run_options(coverage)
    coverage.set_defaults(handler=cmd_coverage)

    table1 = commands.add_parser("table1", help="Table 1 harness")
    table1.add_argument("--scale", type=int, default=None)
    table1.set_defaults(handler=cmd_table1)

    fig13 = commands.add_parser("fig13", help="Figure 13 harness")
    fig13.add_argument("--scale", type=int, default=None)
    fig13.add_argument("--repeats", type=int, default=3)
    fig13.set_defaults(handler=cmd_fig13)

    fig14 = commands.add_parser("fig14", help="Figure 14 harness")
    fig14.add_argument("--scale", type=int, default=None)
    fig14.add_argument("--repeats", type=int, default=3)
    fig14.set_defaults(handler=cmd_fig14)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing: random programs through every "
        "checker/engine/sharding configuration",
    )
    fuzz.add_argument(
        "--seed", type=int, default=1,
        help="campaign base seed; per-run seeds derive from it (default: 1)",
    )
    fuzz.add_argument(
        "--runs", type=int, default=100,
        help="number of generated programs (default: 100)",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=4,
        help="workers for the sharded oracle leg; <=1 skips it (default: 4)",
    )
    fuzz.add_argument(
        "--shrink", action="store_true",
        help="delta-debug every disagreement into a minimal pytest reproducer",
    )
    fuzz.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="write the machine-readable campaign summary here",
    )
    fuzz.add_argument(
        "--report-dir", metavar="DIR", default="fuzz-reports",
        help="directory for shrunk reproducer modules (default: fuzz-reports)",
    )
    fuzz.add_argument(
        "--metrics", metavar="OUT.json", default=None,
        help="collect fuzz.* observability metrics and write the snapshot here",
    )
    fuzz.add_argument("--verbose", action="store_true", help="print per-run progress")
    _add_engine_option(fuzz)
    fuzz.add_argument(
        "--tasks", type=int, default=6,
        help="generator: spawn budget per program (default: 6)",
    )
    fuzz.add_argument(
        "--depth", type=int, default=3,
        help="generator: maximum nesting depth (default: 3)",
    )
    fuzz.add_argument(
        "--locations", type=int, default=3,
        help="generator: shared locations per program (default: 3)",
    )
    fuzz.add_argument(
        "--locks", type=int, default=2,
        help="generator: lock pool size (default: 2)",
    )
    fuzz.add_argument(
        "--lock-density", type=float, default=0.4,
        help="generator: probability an access is lock-protected (default: 0.4)",
    )
    fuzz.set_defaults(handler=cmd_fuzz)

    ablation = commands.add_parser("ablation", help="DESIGN.md ablations")
    ablation.add_argument("which", choices=("lca_cache", "metadata"))
    ablation.add_argument("--scale", type=int, default=None)
    ablation.set_defaults(handler=cmd_ablation)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
