"""Content-addressed result cache: re-checking a seen trace is a hash lookup.

The offline workflow checks the same recorded traces repeatedly -- CI
goldens, fuzz corpora, regression archives -- and a checker run is a pure
function of (trace, checker configuration).  This module memoizes that
function on disk: the key is a SHA-256 over the trace's bytes digest and
every configuration input that can change the report, and the value is
the *normalized* report (violations in canonical order), so a cached
result is byte-identical no matter which ``jobs`` count or shard layout
originally produced it.

Deliberately **excluded** from the key:

* ``jobs`` / checkpointing / fault policy -- sharding is proven
  report-equivalent to in-process checking (PR 1/4), so parallelism is an
  execution detail, not an input.
* observability -- metrics never feed back into reports.

Storage reuses the shard-checkpoint substrate
(:func:`repro.checker.supervisor._atomic_write`): one JSON file per key
under a two-level fan-out directory, written atomically, and any entry
that fails to decode is treated as a miss and recomputed -- a damaged
cache can cost time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.checker.supervisor import _atomic_write
from repro.report import (
    ViolationReport,
    location_key,
    report_from_dict,
    report_to_dict,
)
from repro.trace.serialize import dpst_to_dict, event_to_dict
from repro.trace.trace import Trace

CACHE_SCHEMA = "repro-result-cache/1"

_HASH_CHUNK = 1 << 20


def file_digest(path: str) -> str:
    """Streamed SHA-256 hex digest of the file at *path*."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(_HASH_CHUNK), b""):
            digest.update(chunk)
    return digest.hexdigest()


def trace_digest(trace: Trace) -> str:
    """SHA-256 hex digest of an in-memory :class:`Trace`.

    Hashes a canonical JSON rendering (DPST arrays, then one event row per
    line) incrementally, so two equal traces digest identically regardless
    of how they were produced.  Note this is a *different* digest space
    from :func:`file_digest` over a serialized copy -- intentionally: keys
    only ever need to match themselves.
    """
    digest = hashlib.sha256()
    dpst = None if trace.dpst is None else dpst_to_dict(trace.dpst)
    digest.update(json.dumps(dpst, sort_keys=True).encode("utf-8"))
    digest.update(b"\n")
    for event in trace.events:
        digest.update(
            json.dumps(event_to_dict(event), sort_keys=True).encode("utf-8")
        )
        digest.update(b"\n")
    return digest.hexdigest()


def checker_cache_token(spec: Any, kwargs: Optional[Dict[str, Any]] = None) -> Optional[str]:
    """A stable identity token for a checker request, or ``None``.

    Only *string* specs are cacheable: a class or instance may carry
    constructor state that :func:`repro.checker.checker_name_of` cannot
    see (e.g. ``OptAtomicityChecker(mode="thorough")`` names itself the
    same as the paper-mode default), so hashing the name alone would
    alias distinct configurations.  Keyword arguments are folded in as
    canonical JSON; unserializable kwargs make the request uncacheable.
    """
    if not isinstance(spec, str):
        return None
    if not kwargs:
        return spec
    try:
        return f"{spec}?{json.dumps(kwargs, sort_keys=True)}"
    except (TypeError, ValueError):
        return None


def result_cache_key(
    trace_digest: str,
    checker_token: str,
    engine: str,
    prefilter: bool,
    strict: bool,
) -> str:
    """SHA-256 cache key over every report-affecting input."""
    token = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "trace": trace_digest,
            "checker": checker_token,
            "engine": engine,
            "prefilter": bool(prefilter),
            "strict": bool(strict),
        },
        sort_keys=True,
    )
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


def normalized_report_copy(report: ViolationReport) -> ViolationReport:
    """A copy of *report* with violations in canonical (normal-form) order.

    Checkers record violations in first-seen order, which varies with the
    shard layout; the cache stores and serves this jobs-insensitive form
    so a hit is byte-identical to a fresh normalized run.  ``raw_count``
    is preserved.
    """
    def triple_key(violation: Any) -> str:
        return json.dumps(
            {
                "location": location_key(violation.location),
                "pattern": violation.pattern,
                "steps": [
                    violation.first.step,
                    violation.second.step,
                    violation.third.step,
                ],
                "accesses": [
                    violation.first.access_type,
                    violation.second.access_type,
                    violation.third.access_type,
                ],
            },
            sort_keys=True,
        )

    def cycle_key(violation: Any) -> str:
        return json.dumps(
            {
                "location": location_key(violation.location),
                "cycle": sorted(violation.cycle),
            },
            sort_keys=True,
        )

    copy = ViolationReport()
    for violation in sorted(report.violations, key=triple_key):
        copy.add(violation)
    for cycle in sorted(report.cycles, key=cycle_key):
        copy.add_cycle(cycle)
    copy.raw_count = report.raw_count
    return copy


@dataclass(frozen=True)
class CacheEntry:
    """One cache read: the stored report plus bookkeeping."""

    key: str
    report: ViolationReport
    nbytes: int
    meta: Dict[str, Any]


class ResultCache:
    """On-disk content-addressed store of normalized check reports.

    Layout: ``<directory>/<key[:2]>/<key>.json`` (two-level fan-out keeps
    directory listings sane at millions of entries).  Writes go through
    the checkpoint store's atomic temp-file + :func:`os.replace`
    discipline, so concurrent checkers racing on the same key simply
    last-write-wins identical bytes.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def load(self, key: str) -> Optional[CacheEntry]:
        """Return the entry stored under *key*, or ``None`` on miss.

        A present-but-damaged entry (torn by an external process, schema
        drift, undecodable report) is also a miss: the caller recomputes
        and overwrites it.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
            data = json.loads(raw)
            if (
                not isinstance(data, dict)
                or data.get("schema") != CACHE_SCHEMA
                or data.get("key") != key
            ):
                return None
            report = report_from_dict(data["report"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return CacheEntry(
            key=key,
            report=report,
            nbytes=len(raw.encode("utf-8")),
            meta=data.get("meta", {}),
        )

    def store(
        self,
        key: str,
        report: ViolationReport,
        meta: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Persist *report* under *key*; return the entry's size in bytes.

        Callers should pass an already-normalized report (see
        :func:`normalized_report_copy`) so hits replay byte-identically.
        """
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "report": report_to_dict(report),
            "meta": meta or {},
        }
        _atomic_write(path, payload)
        return os.path.getsize(path)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<ResultCache {self.directory!r}>"
