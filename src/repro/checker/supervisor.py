"""Worker supervision and shard checkpointing for the sharded driver.

The sharded pipeline (:mod:`repro.checker.sharded`) originally ran its
workers through ``multiprocessing.Pool.map``: one crashed worker, one
OOM-killed shard, or one hung process aborted the whole run and threw
away every completed shard.  Velodrome-style offline analyses treat the
driver as infrastructure that must survive partial failure, so this
module supplies the two fault-tolerance primitives the driver builds on:

* :func:`run_supervised` -- each shard attempt runs in its *own*
  supervised process with a result pipe.  Worker death (any signal,
  including SIGKILL) surfaces as pipe EOF, worker exceptions travel back
  as strings, and a configurable per-shard timeout kills stragglers.
  Failures are handled per the :class:`WorkerPolicy`: bounded retry with
  exponential backoff, graceful degradation to in-process checking of
  the failed shard, or immediate abort.
* :class:`CheckpointStore` -- persists each completed shard's
  :class:`~repro.report.ViolationReport` (+ optional metrics snapshot)
  as JSON under a run directory, so an interrupted run can be resumed
  (``check_sharded(..., checkpoint_dir=..., resume=True)`` /
  ``repro check-trace --checkpoint DIR --resume``) without redoing
  completed shards.  Merging stored and fresh reports in shard order
  reproduces the fresh-run report exactly.

Fault injection hooks (tests and the CI smoke job) are environment
variables so they reach workers under every start method:

* ``REPRO_FAULT_KILL="SHARD[@ATTEMPT]"`` -- the matching shard attempt
  SIGKILLs itself (default attempt 0, i.e. only the first try dies;
  ``@*`` kills every attempt, for exercising retry exhaustion);
* ``REPRO_FAULT_SLEEP="SHARD[@ATTEMPT]:SECONDS"`` -- the matching shard
  attempt sleeps first, for exercising timeouts.
"""

from __future__ import annotations

import json
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CheckerError, TraceError
from repro.report import ViolationReport, report_from_dict, report_to_dict

#: Legal ``on_shard_failure`` policies (see :class:`WorkerPolicy`).
FAILURE_POLICIES = ("retry", "inline", "raise")

#: Fault-injection environment hooks (see module docstring).
FAULT_KILL_ENV = "REPRO_FAULT_KILL"
FAULT_SLEEP_ENV = "REPRO_FAULT_SLEEP"


def _parse_target(spec: str) -> Tuple[int, Optional[int]]:
    """Parse ``"SHARD"`` / ``"SHARD@ATTEMPT"`` / ``"SHARD@*"``.

    The attempt defaults to ``0``; ``None`` (from ``@*``) matches every
    attempt.
    """
    shard, _, attempt = spec.partition("@")
    if attempt == "*":
        return int(shard), None
    return int(shard), int(attempt) if attempt else 0


def _matches(target: Tuple[int, Optional[int]], shard: int, attempt: int) -> bool:
    return target[0] == shard and target[1] in (None, attempt)


def maybe_inject_fault(shard: int, attempt: int) -> None:
    """Honor the fault-injection env hooks; a no-op unless they are set.

    Called at the top of every worker body (and of inline fallbacks) so
    tests and the CI fault smoke job can kill or stall one specific
    shard attempt without patching any code.
    """
    kill = os.environ.get(FAULT_KILL_ENV)
    if kill and _matches(_parse_target(kill), shard, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    sleep = os.environ.get(FAULT_SLEEP_ENV)
    if sleep:
        target_spec, _, seconds = sleep.rpartition(":")
        if _matches(_parse_target(target_spec), shard, attempt):
            time.sleep(float(seconds))


@dataclass(frozen=True)
class WorkerPolicy:
    """How the supervisor reacts to a shard worker failing.

    Attributes
    ----------
    on_failure:
        ``"retry"`` -- retry up to *max_retries* times, then raise
        :class:`CheckerError`; ``"inline"`` -- retry up to *max_retries*
        times, then degrade to checking the shard in-process in the
        driver (the run completes, slower); ``"raise"`` -- abort on the
        first failure, no retries.
    max_retries:
        Extra worker attempts after the first failure (so a shard runs
        at most ``max_retries + 1`` times in a worker).
    retry_backoff:
        Base delay in seconds before a retry; attempt *n* waits
        ``retry_backoff * 2**(n-1)``.
    timeout_s:
        Per-attempt wall-clock budget; an attempt exceeding it is killed
        and counts as a failure.  ``None`` disables the timeout.
    """

    on_failure: str = "retry"
    max_retries: int = 2
    retry_backoff: float = 0.05
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.on_failure not in FAILURE_POLICIES:
            raise CheckerError(
                f"unknown on_shard_failure policy {self.on_failure!r} "
                f"(expected one of {', '.join(FAILURE_POLICIES)})"
            )
        if self.max_retries < 0:
            raise CheckerError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise CheckerError(
                f"shard timeout must be positive, got {self.timeout_s}"
            )


@dataclass(frozen=True)
class ShardTask:
    """One shard of work: ``fn(payload, attempt)`` -> (report, snapshot)."""

    shard_id: int
    fn: Callable[[Any, int], Tuple[ViolationReport, Optional[dict]]]
    payload: Any


@dataclass
class ShardOutcome:
    """The result of one shard, however it was obtained."""

    shard_id: int
    report: ViolationReport
    snapshot: Optional[dict] = None
    attempts: int = 1
    failures: int = 0
    resumed: bool = False
    inline: bool = False


class _Attempt:
    """Mutable supervision state of one shard task."""

    __slots__ = ("task", "attempt", "failures", "eligible_at")

    def __init__(self, task: ShardTask) -> None:
        self.task = task
        self.attempt = 0
        self.failures = 0
        self.eligible_at = 0.0


def _shard_entry(fn, payload, attempt, conn) -> None:
    """Worker process body: run the shard, ship the result up the pipe.

    Exceptions travel back as strings (always picklable); a worker that
    dies before sending shows up to the supervisor as pipe EOF.
    """
    try:
        result = fn(payload, attempt)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _drain(running: Dict[Any, Tuple[Any, _Attempt, float]]) -> None:
    """Kill and reap every still-running worker (abort path)."""
    for proc, _, _ in running.values():
        try:
            proc.terminate()
        except Exception:
            pass
    for conn, (proc, _, _) in list(running.items()):
        proc.join(timeout=2.0)
        if proc.is_alive():
            try:
                proc.kill()
            except Exception:
                pass
            proc.join(timeout=2.0)
        try:
            conn.close()
        except Exception:
            pass
    running.clear()


def run_supervised(
    tasks: List[ShardTask],
    jobs: int,
    context,
    policy: Optional[WorkerPolicy] = None,
    on_event: Optional[Callable[[str, int, str], None]] = None,
    on_outcome: Optional[Callable[[ShardOutcome], None]] = None,
) -> List[ShardOutcome]:
    """Run *tasks* in supervised worker processes; return their outcomes.

    At most *jobs* workers run concurrently.  Each attempt gets its own
    process and result pipe, so a worker dying from any signal is
    detected (EOF) rather than hanging the driver.  *policy* governs
    retry/degrade/abort behavior; *on_event* (when given) receives
    ``("failure" | "retry" | "inline" | "success", shard_id, detail)``
    notifications as they happen -- the driver uses it for metrics.
    *on_outcome* fires with each :class:`ShardOutcome` the moment its
    shard completes -- crucially *before* any later shard can abort the
    run, so checkpoints written from it survive a failed run.

    Raises :class:`CheckerError` when a shard is abandoned (policy
    ``"raise"``, or retries exhausted under ``"retry"``), with every
    other worker terminated first.
    """
    policy = policy or WorkerPolicy()
    notify = on_event or (lambda kind, shard, detail: None)
    deliver = on_outcome or (lambda outcome: None)
    outcomes: Dict[int, ShardOutcome] = {}
    pending: List[_Attempt] = [_Attempt(task) for task in tasks]
    #: recv-connection -> (process, attempt state, start time)
    running: Dict[Any, Tuple[Any, _Attempt, float]] = {}
    capacity = max(1, jobs)

    def launch(state: _Attempt) -> None:
        recv, send = context.Pipe(duplex=False)
        proc = context.Process(
            target=_shard_entry,
            args=(state.task.fn, state.task.payload, state.attempt, send),
        )
        try:
            proc.start()
        except Exception as exc:
            # Under spawn/forkserver the payload is pickled here; turn a
            # pickle traceback into an actionable CheckerError.
            recv.close()
            send.close()
            raise CheckerError(
                f"cannot ship shard {state.task.shard_id} to a "
                f"{context.get_start_method()!r} worker: {exc}; worker "
                "payloads (checker spec, annotations, events) must be "
                "picklable under this start method"
            ) from exc
        send.close()
        running[recv] = (proc, state, time.monotonic())

    def succeed(state: _Attempt, result, inline: bool = False) -> None:
        report, snapshot = result
        outcome = ShardOutcome(
            shard_id=state.task.shard_id,
            report=report,
            snapshot=snapshot,
            attempts=state.attempt + 1,
            failures=state.failures,
            inline=inline,
        )
        outcomes[state.task.shard_id] = outcome
        notify("success", state.task.shard_id, "inline" if inline else "")
        deliver(outcome)

    def fail(state: _Attempt, reason: str) -> None:
        state.failures += 1
        shard_id = state.task.shard_id
        notify("failure", shard_id, reason)
        if policy.on_failure == "raise":
            raise CheckerError(f"shard {shard_id} failed: {reason}")
        if state.attempt < policy.max_retries:
            state.attempt += 1
            state.eligible_at = time.monotonic() + (
                policy.retry_backoff * (2 ** (state.attempt - 1))
            )
            notify("retry", shard_id, reason)
            pending.append(state)
            return
        if policy.on_failure == "inline":
            # Retries exhausted: degrade to in-process checking so the
            # run still completes.  The fault hooks are suspended for
            # the call -- it runs in the *driver* process, and a kill
            # hook matching this attempt would take down the whole run.
            notify("inline", shard_id, reason)
            suspended = {
                name: os.environ.pop(name)
                for name in (FAULT_KILL_ENV, FAULT_SLEEP_ENV)
                if name in os.environ
            }
            try:
                result = state.task.fn(state.task.payload, state.attempt + 1)
            except Exception as exc:
                raise CheckerError(
                    f"shard {shard_id} failed in-process after "
                    f"{state.attempt + 1} worker attempt(s): {exc}"
                ) from exc
            finally:
                os.environ.update(suspended)
            succeed(state, result, inline=True)
            return
        raise CheckerError(
            f"shard {shard_id} failed after {state.attempt + 1} attempt(s): "
            f"{reason}; pass on_shard_failure='inline' to degrade to "
            "in-process checking instead of aborting"
        )

    try:
        while pending or running:
            now = time.monotonic()
            while len(running) < capacity:
                state = next(
                    (s for s in pending if s.eligible_at <= now), None
                )
                if state is None:
                    break
                pending.remove(state)
                launch(state)
            if not running:
                # Everything pending is backing off; sleep to the
                # earliest eligibility.
                wake = min(s.eligible_at for s in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue
            wait_timeout = 0.25
            if policy.timeout_s is not None:
                earliest = min(started for _, _, started in running.values())
                wait_timeout = min(
                    wait_timeout,
                    max(0.0, earliest + policy.timeout_s - now),
                )
            if pending:
                wake = min(s.eligible_at for s in pending)
                wait_timeout = min(wait_timeout, max(0.0, wake - now))
            ready = multiprocessing.connection.wait(
                list(running), timeout=wait_timeout
            )
            for conn in ready:
                proc, state, _started = running.pop(conn)
                status: Optional[str] = None
                value: Any = None
                try:
                    status, value = conn.recv()
                except (EOFError, OSError):
                    status = None  # died before (or while) sending
                finally:
                    conn.close()
                proc.join()
                if status == "ok":
                    succeed(state, value)
                elif status == "error":
                    fail(state, value)
                else:
                    fail(state, f"worker died (exit code {proc.exitcode})")
            if policy.timeout_s is not None:
                now = time.monotonic()
                expired = [
                    conn
                    for conn, (_, _, started) in running.items()
                    if now - started > policy.timeout_s
                ]
                for conn in expired:
                    proc, state, _started = running.pop(conn)
                    try:
                        proc.kill()
                    except Exception:
                        pass
                    proc.join(timeout=2.0)
                    conn.close()
                    fail(
                        state,
                        f"timed out after {policy.timeout_s:g}s",
                    )
    except BaseException:
        _drain(running)
        raise
    return [outcomes[task.shard_id] for task in tasks]


# ---------------------------------------------------------------------------
# Shard checkpoints
# ---------------------------------------------------------------------------

#: Version stamp of the per-shard checkpoint JSON layout.
CHECKPOINT_SCHEMA = "repro-checkpoint/1"

#: The run manifest file inside a checkpoint directory.
MANIFEST_NAME = "run.json"


def _atomic_write(path: str, data: Dict[str, Any]) -> None:
    """Write JSON via a temp file + rename so readers never see a torn
    checkpoint (an interrupted run leaves either the old file or none)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class CheckpointStore:
    """Per-shard result persistence under one run directory.

    Layout::

        DIR/run.json          manifest: schema, jobs, checker, source hint
        DIR/shard-00003.json  one completed shard: report + metrics snapshot

    A fresh run writes the manifest and clears stale shard files; a
    ``resume=True`` run validates the manifest against the current
    configuration (jobs count and checker name must match -- the shard
    partition depends on both) and then serves stored shard results via
    :meth:`load`.  Unreadable or torn shard files are silently recomputed;
    an *incompatible* manifest is a hard :class:`CheckerError` so results
    from different configurations can never be mixed.
    """

    def __init__(
        self,
        directory: str,
        jobs: int,
        checker: str,
        source: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        self.directory = os.fspath(directory)
        self.resume = bool(resume)
        self.meta: Dict[str, Any] = {
            "schema": CHECKPOINT_SCHEMA,
            "jobs": int(jobs),
            "checker": checker,
            "source": source,
        }
        os.makedirs(self.directory, exist_ok=True)
        manifest = os.path.join(self.directory, MANIFEST_NAME)
        stored = self._read_manifest(manifest)
        if self.resume and stored is not None:
            for key in ("schema", "jobs", "checker"):
                if stored.get(key) != self.meta[key]:
                    raise CheckerError(
                        f"checkpoint directory {self.directory!r} belongs "
                        f"to an incompatible run ({key}={stored.get(key)!r}, "
                        f"this run has {key}={self.meta[key]!r}); use a "
                        "fresh directory or matching settings"
                    )
        else:
            # Fresh run (or resume of an empty directory): stale shard
            # files from other configurations must not leak in.
            for name in os.listdir(self.directory):
                if name.startswith("shard-") and name.endswith(".json"):
                    os.unlink(os.path.join(self.directory, name))
            _atomic_write(manifest, self.meta)

    @staticmethod
    def _read_manifest(path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _shard_path(self, shard_id: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_id:05d}.json")

    def load(
        self, shard_id: int
    ) -> Optional[Tuple[ViolationReport, Optional[dict]]]:
        """The stored result of *shard_id*, or ``None`` to recompute.

        Only serves results when resuming; damaged or mismatched shard
        files degrade to recomputation, never to a wrong merge.
        """
        if not self.resume:
            return None
        path = self._shard_path(shard_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != CHECKPOINT_SCHEMA
            or data.get("shard") != shard_id
        ):
            return None
        try:
            report = report_from_dict(data["report"])
        except (KeyError, TypeError, ValueError, TraceError):
            return None
        return report, data.get("metrics")

    def store(
        self,
        shard_id: int,
        report: ViolationReport,
        snapshot: Optional[dict] = None,
    ) -> None:
        """Persist one completed shard's report (+ metrics snapshot)."""
        _atomic_write(
            self._shard_path(shard_id),
            {
                "schema": CHECKPOINT_SCHEMA,
                "shard": shard_id,
                "report": report_to_dict(report),
                "metrics": snapshot,
            },
        )

    def completed_shards(self) -> List[int]:
        """Shard ids with a stored checkpoint file (sorted)."""
        shards = []
        for name in os.listdir(self.directory):
            if name.startswith("shard-") and name.endswith(".json"):
                try:
                    shards.append(int(name[len("shard-"):-len(".json")]))
                except ValueError:
                    continue
        return sorted(shards)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<CheckpointStore {self.directory!r} jobs={self.meta['jobs']} "
            f"resume={self.resume}>"
        )
