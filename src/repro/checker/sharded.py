"""Location-sharded parallel trace checking.

The optimized checker's state (paper Figures 6-9) is keyed entirely by
location: one :class:`~repro.checker.metadata.GlobalSpace` per location
and one :class:`~repro.checker.metadata.LocalCell` per (task, location).
Against an immutable, fully-built DPST the analysis of one location never
reads or writes another location's metadata, so a recorded trace can be
partitioned by location hash and each shard checked in its own process --
the verdict is the union of the per-shard verdicts.  The same holds for
the basic checker (per-location access histories) and the race detector
(per-location shadow cells); such observers advertise it with
``location_sharded = True``.  Velodrome does *not* qualify: its
happens-before graph spans locations, and sharding would silently drop
cross-location cycles, so the driver refuses it for ``jobs > 1``.

Sharding key: multi-variable annotation groups share one metadata cell, so
events are bucketed by ``annotations.metadata_key(location)`` -- a group's
members always land in the same shard.

Two input shapes:

* an in-memory :class:`~repro.trace.trace.Trace` -- events are partitioned
  in the parent and shipped to workers (with the DPST flattened once);
* a trace *file path* -- each worker streams the file itself through
  :class:`~repro.trace.serialize.TraceReader` and keeps only its shard, so
  the parent never materializes the events and traces larger than RAM can
  be checked.

Workers replay their shard with :func:`repro.trace.replay.replay_memory_events`
and return a :class:`~repro.report.ViolationReport`; the driver merges them
with :meth:`ViolationReport.merge`.

Static prefilter: ``skip_locations`` (normally produced by
``repro.static.lint`` serial-location proofs, via
``CheckSession.check(static_prefilter=...)``) drops every memory event on
those locations before replay -- in the parent for in-memory sources, in
each worker for streamed files, so ``jobs=1`` and ``jobs=N`` drop (and
count) exactly the same events.  The driver never decides *whether*
skipping is sound; callers must only pass locations proven
schedule-serial.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.checker import checker_name_of, make_checker
from repro.checker.annotations import AtomicAnnotations
from repro.checker.supervisor import (
    CheckpointStore,
    ShardOutcome,
    ShardTask,
    WorkerPolicy,
    maybe_inject_fault,
    run_supervised,
)
from repro.errors import CheckerError, TraceError
from repro.report import ViolationReport
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events
from repro.trace.serialize import (
    TraceReader,
    dpst_from_dict,
    dpst_to_dict,
    location_shard_key,
    open_trace,
)
from repro.trace.trace import Trace

Location = Hashable

#: Any form :func:`repro.checker.make_checker` accepts.
CheckerSpec = Any

TraceSource = Union[Trace, TraceReader, str, "os.PathLike[str]"]

#: Locations whose events the driver may drop (proven schedule-serial).
SkipLocations = Optional[frozenset]


def filter_skipped(
    events: Iterable[MemoryEvent],
    skip_locations: frozenset,
    recorder=None,
) -> Iterable[MemoryEvent]:
    """Drop events on *skip_locations*, counting every drop.

    The count lands on *recorder* (when enabled) as
    ``static.prefilter.events_skipped`` (one per drop, historical name)
    and ``static.prefilter.dropped_events`` (same value, the
    per-location prefilter's counter family) -- in the parent for
    in-memory sources and ``jobs=1``, in the worker snapshot for
    streamed shards, so the summed totals match across job counts.
    """
    counting = recorder is not None and recorder.enabled
    for event in events:
        if isinstance(event, MemoryEvent) and event.location in skip_locations:
            if counting:
                recorder.count("static.prefilter.events_skipped")
                recorder.count("static.prefilter.dropped_events")
            continue
        yield event


def shard_for_location(location: Location, jobs: int) -> int:
    """Deterministic shard index of *location* in ``[0, jobs)``.

    Keys on :func:`~repro.trace.serialize.location_shard_key` (CRC-32 of
    the location's ``repr``) rather than Python's builtin ``hash``: string
    hashing is randomized per process (PYTHONHASHSEED), and every worker
    process must agree on the partition.  The same key is stamped on v2
    trace lines, so file-streaming workers route lines without decoding
    them.
    """
    if jobs <= 1:
        return 0
    return location_shard_key(location) % jobs


def partition_memory_events(
    events: Iterable[object],
    jobs: int,
    annotations: Optional[AtomicAnnotations] = None,
) -> List[List[MemoryEvent]]:
    """Bucket the memory events of *events* into ``jobs`` shards.

    Relative order within each shard is trace order.  With non-trivial
    *annotations*, bucketing keys on ``metadata_key`` so every member of a
    multi-variable group shares a shard (they share a metadata cell).
    """
    shards: List[List[MemoryEvent]] = [[] for _ in range(jobs)]
    keyed = annotations is not None and not annotations.trivial
    for event in events:
        if not isinstance(event, MemoryEvent):
            continue
        key = annotations.metadata_key(event.location) if keyed else event.location
        shards[shard_for_location(key, jobs)].append(event)
    return shards


def _require_shardable(checker: CheckerSpec) -> None:
    """Raise :class:`CheckerError` unless *checker* is per-location."""
    prototype = make_checker(checker) if isinstance(checker, str) else checker
    if not getattr(prototype, "location_sharded", False):
        raise CheckerError(
            f"checker {checker_name_of(checker)!r} is not location-sharded "
            "(its verdict depends on cross-location event order); "
            "run it with jobs=1"
        )


def _fresh_checker(spec: CheckerSpec):
    """Instantiate one shard's checker from a (possibly pickled) spec.

    Worker processes each get their own unpickled copy of an instance
    spec, so sharing a pre-built instance across shards is safe -- every
    shard replays into private state.
    """
    return make_checker(spec)


# -- worker bodies (top level so multiprocessing can pickle them) -----------


def _worker_recorder(collect: bool):
    """A per-shard :class:`~repro.obs.MetricsRecorder`, or ``None``.

    Workers never share a recorder with the parent -- each shard records
    into a private snapshot that travels back as a plain dict and is
    merged by :meth:`repro.obs.MetricsRecorder.add_shard`.
    """
    if not collect:
        return None
    from repro.obs import MetricsRecorder

    return MetricsRecorder()


def _worker_snapshot(recorder, elapsed: float):
    """Finalize a worker recorder into its wire-format snapshot dict."""
    if recorder is None:
        return None
    recorder.gauge("worker.elapsed_s", elapsed)
    recorder.gauge("worker.pid", float(os.getpid()))
    return recorder.snapshot().to_dict()


def _check_shard_events(
    payload: Tuple[Any, ...], attempt: int = 0
) -> Tuple[ViolationReport, Optional[dict]]:
    """Replay one pre-partitioned shard of in-memory events."""
    (
        shard_id,
        dpst_dict,
        events,
        spec,
        annotations,
        lca_cache,
        parallel_engine,
        collect,
    ) = payload
    maybe_inject_fault(shard_id, attempt)
    dpst = None if dpst_dict is None else dpst_from_dict(dpst_dict)
    recorder = _worker_recorder(collect)
    started = time.perf_counter()
    report = replay_memory_events(
        events,
        _fresh_checker(spec),
        dpst=dpst,
        annotations=annotations,
        lca_cache=lca_cache,
        parallel_engine=parallel_engine,
        recorder=recorder,
    )
    return report, _worker_snapshot(recorder, time.perf_counter() - started)


def _check_shard_from_file(
    payload: Tuple[Any, ...], attempt: int = 0
) -> Tuple[ViolationReport, Optional[dict]]:
    """Stream a trace file and replay only this worker's shard."""
    (
        shard_id,
        path,
        jobs,
        spec,
        annotations,
        lca_cache,
        parallel_engine,
        collect,
        skip_locations,
        strict,
    ) = payload
    maybe_inject_fault(shard_id, attempt)
    reader = TraceReader(path, strict=strict)
    try:
        keyed = annotations is not None and not annotations.trivial

        if keyed:
            # Group-aware key: the line's "sk" stamp (raw location) may
            # not match metadata_key, so decode every line and re-key.
            def shard_stream():
                for event in reader.memory_events():
                    key = annotations.metadata_key(event.location)
                    if shard_for_location(key, jobs) == shard_id:
                        yield event

            events = shard_stream()
        else:
            # Fast path: the reader shard-filters raw lines by their "sk"
            # stamp, so this worker only JSON-decodes its own 1/jobs slice.
            events = reader.memory_events(shard=shard_id, jobs=jobs)

        recorder = _worker_recorder(collect)
        if skip_locations:
            # Each worker drops its own shard's skipped events (the parent
            # never sees the stream), counting into its private snapshot.
            events = filter_skipped(events, skip_locations, recorder)
        started = time.perf_counter()
        report = replay_memory_events(
            events,
            _fresh_checker(spec),
            dpst=reader.dpst,
            annotations=annotations,
            lca_cache=lca_cache,
            parallel_engine=parallel_engine,
            recorder=recorder,
        )
        # Every worker scans (and in lenient mode skips) the same
        # unstamped garbage lines; shard 0 alone reports the count so
        # jobs=1 and jobs=N totals agree.
        if recorder is not None and shard_id == 0 and reader.lines_skipped:
            recorder.count("trace.lines_skipped", reader.lines_skipped)
        return report, _worker_snapshot(recorder, time.perf_counter() - started)
    finally:
        reader.close()


def _mp_context(start_method: Optional[str] = None):
    """Resolve the multiprocessing context for worker processes.

    Prefers fork (cheap, inherits the already-imported interpreter);
    an explicit *start_method* -- or the ``REPRO_START_METHOD``
    environment variable, which the CI matrix uses to run the test
    suite under spawn -- overrides.  All worker payloads are picklable,
    so every start method produces identical reports; an unpicklable
    *checker instance* surfaces as a :class:`CheckerError` from the
    supervisor, not a pickle traceback.
    """
    if start_method is None:
        start_method = os.environ.get("REPRO_START_METHOD") or None
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise CheckerError(
                f"start method {start_method!r} is not available on this "
                f"platform (have: {', '.join(methods)})"
            )
        return multiprocessing.get_context(start_method)
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def default_jobs() -> int:
    """Default worker count: one per *usable* CPU.

    ``os.sched_getaffinity`` reflects cgroup and affinity limits --
    CI containers routinely expose 2 usable cores on a 64-core host,
    where ``os.cpu_count()`` would oversubscribe 32x.  Platforms
    without it (macOS) fall back to ``cpu_count``.
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platform behavior
            pass
    return os.cpu_count() or 1


def check_sharded(
    source: TraceSource,
    checker: CheckerSpec = "optimized",
    jobs: Optional[int] = None,
    annotations: Optional[AtomicAnnotations] = None,
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    recorder=None,
    skip_locations: SkipLocations = None,
    on_shard_failure: str = "retry",
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    shard_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    strict: Optional[bool] = None,
    start_method: Optional[str] = None,
    streaming: bool = False,
    window: Optional[int] = None,
) -> ViolationReport:
    """Check *source* with ``jobs`` parallel per-location shards.

    Parameters
    ----------
    source:
        A :class:`Trace`, a :class:`TraceReader`, or a trace file path
        (either serialization format; the streaming JSONL format keeps
        memory bounded).
    checker:
        Anything :func:`repro.checker.make_checker` accepts -- a name, a
        checker class, or a pre-built instance.  With ``jobs > 1`` the
        checker must be ``location_sharded``.
    jobs:
        Worker process count; ``None`` means one per usable CPU (cgroup
        aware); ``1`` checks in-process with no multiprocessing at all.
    annotations / lca_cache / parallel_engine:
        Forwarded to replay; *parallel_engine* may be any name in
        :func:`repro.dpst.engines.available_engines` (each worker builds
        its own engine over its shard via the registry), and annotations
        also steer the sharding key so multi-variable groups stay
        together.
    recorder:
        Optional :class:`repro.obs.Recorder`.  When enabled, each worker
        collects a private per-shard snapshot (counters, gauges, spans)
        that the driver folds back in with
        :meth:`~repro.obs.MetricsRecorder.add_shard`: counters sum into
        the parent totals while each shard's spans stay listed under the
        snapshot's ``shards`` array.  Disabled or ``None`` costs nothing.
    skip_locations:
        Locations proven schedule-serial by the static lint pass: their
        memory events are dropped before replay (and counted, never
        silently).  Soundness is the caller's responsibility -- use
        :meth:`repro.session.CheckSession.check` with
        ``static_prefilter=...`` for the safety-gated path.
    on_shard_failure / max_retries / retry_backoff / shard_timeout:
        The fault-tolerance policy (see
        :class:`~repro.checker.supervisor.WorkerPolicy`): a crashed,
        erroring, or timed-out worker is retried with exponential
        backoff (``"retry"``, the default), degraded to in-process
        checking after the retries (``"inline"``), or aborts the run
        immediately (``"raise"``).  ``shard_timeout`` bounds one
        attempt's wall-clock seconds; ``None`` means no timeout.
    checkpoint_dir / resume:
        With *checkpoint_dir*, every completed shard's report (+ metrics
        snapshot) is persisted as JSON under that directory; with
        ``resume=True`` shards already checkpointed by a compatible
        earlier run (same jobs count and checker) are merged from disk
        instead of re-run, reproducing the fresh-run report exactly.
    strict:
        ``False`` turns on lenient trace ingestion for file sources
        (undecodable JSONL lines are counted as ``trace.lines_skipped``
        and skipped, never silently); ``None`` inherits the reader's
        own mode (``True`` for paths).
    start_method:
        Multiprocessing start method override (``"fork"``/``"spawn"``/
        ``"forkserver"``); default prefers fork, and the
        ``REPRO_START_METHOD`` environment variable overrides too.
    streaming / window:
        ``streaming=True`` wraps the checker in a
        :class:`repro.checker.streaming.StreamingChecker` so every shard
        checks its event stream incrementally with a compaction sweep
        each *window* events (``None`` -> the default window, ``0`` ->
        never sweep).  Each worker compacts its own shard; reports stay
        identical to the offline run at every window.

    Returns the merged, deduplicated :class:`ViolationReport`.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise TraceError(f"jobs must be >= 1, got {jobs}")
    if window is not None and not streaming:
        raise CheckerError(
            "window= only applies to streaming checks; pass "
            "streaming=True (or drop window=)"
        )
    if streaming:
        from repro.checker.streaming import DEFAULT_WINDOW, StreamingChecker

        if not isinstance(checker, StreamingChecker):
            checker = StreamingChecker(
                window=(
                    DEFAULT_WINDOW
                    if window is None
                    else (None if window == 0 else window)
                ),
                checker=checker,
            )
    if skip_locations is not None and not skip_locations:
        skip_locations = None
    collect = recorder is not None and recorder.enabled
    if skip_locations and collect:
        recorder.count("static.prefilter.locations", len(skip_locations))

    owned_reader: Optional[TraceReader] = None
    if isinstance(source, (str, os.PathLike)):
        reader: Optional[TraceReader] = open_trace(
            source, strict=True if strict is None else strict
        )
        owned_reader = reader
        path: Optional[str] = reader.path
        trace: Optional[Trace] = None
    elif isinstance(source, TraceReader):
        reader = source
        path = source.path
        trace = None
    elif isinstance(source, Trace):
        reader = None
        path = None
        trace = source
    else:
        raise TraceError(
            f"cannot check {type(source).__name__}: expected a Trace, "
            "a TraceReader, or a trace file path"
        )
    if strict is None:
        strict = reader.strict if reader is not None else True

    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        store = CheckpointStore(
            checkpoint_dir,
            jobs=jobs,
            checker=checker_name_of(checker),
            source=path,
            resume=resume,
        )

    try:
        if jobs == 1:
            return _check_single(
                trace, reader, checker, annotations, lca_cache,
                parallel_engine, recorder, skip_locations, store, collect,
            )
        _require_shardable(checker)
        policy = WorkerPolicy(
            on_failure=on_shard_failure,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            timeout_s=shard_timeout,
        )
        return _check_supervised(
            trace, path, checker, jobs, annotations, lca_cache,
            parallel_engine, recorder, skip_locations, strict,
            policy, store, _mp_context(start_method), collect,
        )
    finally:
        # A worker raising must not leak the handles of a reader this
        # driver opened; readers passed in stay the caller's to close.
        if owned_reader is not None:
            owned_reader.close()


def _check_single(
    trace: Optional[Trace],
    reader: Optional[TraceReader],
    checker: CheckerSpec,
    annotations: Optional[AtomicAnnotations],
    lca_cache: bool,
    parallel_engine: str,
    recorder,
    skip_locations: SkipLocations,
    store,
    collect: bool,
) -> ViolationReport:
    """``jobs=1``: in-process replay, with optional checkpointing.

    Checkpointing treats the whole run as shard 0, so
    ``--checkpoint/--resume`` behave uniformly across job counts.
    """
    if store is not None:
        cached = store.load(0)
        if cached is not None:
            if collect:
                recorder.count("sharded.resumed_shards")
            return cached[0]
    events: Iterable[MemoryEvent]
    if trace is not None:
        events, dpst = trace.memory_events(), trace.dpst
    else:
        events, dpst = reader.memory_events(), reader.dpst
    if skip_locations:
        events = filter_skipped(events, skip_locations, recorder)
    skipped_before = reader.lines_skipped if reader is not None else 0
    report = replay_memory_events(
        events,
        make_checker(checker),
        dpst=dpst,
        annotations=annotations,
        lca_cache=lca_cache,
        parallel_engine=parallel_engine,
        recorder=recorder,
    )
    if collect and reader is not None:
        skipped = reader.lines_skipped - skipped_before
        if skipped:
            recorder.count("trace.lines_skipped", skipped)
    if store is not None:
        store.store(0, report, None)
    return report


def _check_supervised(
    trace: Optional[Trace],
    path: Optional[str],
    checker: CheckerSpec,
    jobs: int,
    annotations: Optional[AtomicAnnotations],
    lca_cache: bool,
    parallel_engine: str,
    recorder,
    skip_locations: SkipLocations,
    strict: bool,
    policy: WorkerPolicy,
    store,
    context,
    collect: bool,
) -> ViolationReport:
    """The ``jobs > 1`` path: supervised workers, checkpoints, metrics.

    One control flow for the observed and unobserved configurations --
    spans and counters are per-phase, so gating them on *collect* keeps
    the disabled path free of measurable overhead.
    """
    if collect:
        from repro.obs import SPAN_MAP, SPAN_MERGE, SPAN_PARTITION, SPAN_SHARDED

        sharded_span = recorder.span(SPAN_SHARDED)
    else:
        SPAN_MAP = SPAN_MERGE = SPAN_PARTITION = None
        sharded_span = contextlib.nullcontext()

    def span(name):
        return recorder.span(name) if collect else contextlib.nullcontext()

    with sharded_span:
        if trace is not None:
            with span(SPAN_PARTITION):
                source_events: Iterable[object] = trace.events
                if skip_locations:
                    source_events = filter_skipped(
                        source_events,
                        skip_locations,
                        recorder if collect else None,
                    )
                shards = partition_memory_events(source_events, jobs, annotations)
                dpst_dict = None if trace.dpst is None else dpst_to_dict(trace.dpst)
                tasks = [
                    ShardTask(
                        shard_id=index,
                        fn=_check_shard_events,
                        payload=(
                            index, dpst_dict, shard, checker, annotations,
                            lca_cache, parallel_engine, collect,
                        ),
                    )
                    for index, shard in enumerate(shards)
                    if shard
                ]
            if not tasks:
                if collect:
                    recorder.count("sharded.workers", 0)
                return ViolationReport()
        else:
            tasks = [
                ShardTask(
                    shard_id=shard,
                    fn=_check_shard_from_file,
                    payload=(
                        shard, path, jobs, checker, annotations, lca_cache,
                        parallel_engine, collect, skip_locations, strict,
                    ),
                )
                for shard in range(jobs)
            ]

        # Shards already completed by an earlier interrupted run merge
        # from their checkpoints; only the remainder runs.
        resumed: List[ShardOutcome] = []
        if store is not None and store.resume:
            remaining = []
            for task in tasks:
                cached = store.load(task.shard_id)
                if cached is None:
                    remaining.append(task)
                else:
                    resumed.append(
                        ShardOutcome(
                            shard_id=task.shard_id,
                            report=cached[0],
                            snapshot=cached[1],
                            resumed=True,
                        )
                    )
            tasks = remaining

        def on_event(kind: str, shard_id: int, detail: str) -> None:
            if not collect:
                return
            if kind == "failure":
                recorder.count("sharded.shard_failures")
            elif kind == "retry":
                recorder.count("sharded.retries")
            elif kind == "inline":
                recorder.count("sharded.inline_fallbacks")

        def on_outcome(outcome: ShardOutcome) -> None:
            # Persist the moment a shard completes, not at the end: a
            # later shard aborting the run must not lose finished work.
            if store is not None:
                store.store(outcome.shard_id, outcome.report, outcome.snapshot)

        with span(SPAN_MAP):
            fresh = run_supervised(
                tasks,
                jobs=jobs,
                context=context,
                policy=policy,
                on_event=on_event,
                on_outcome=on_outcome,
            )

        with span(SPAN_MERGE):
            outcomes = sorted(resumed + fresh, key=lambda o: o.shard_id)
            if collect:
                nonempty = 0
                for outcome in outcomes:
                    snapshot = outcome.snapshot
                    if snapshot is None:
                        continue
                    recorder.add_shard(outcome.shard_id, snapshot)
                    if not outcome.resumed:
                        recorder.count("sharded.heartbeats")
                    if snapshot.get("counters", {}).get("trace.events.routed"):
                        nonempty += 1
                recorder.count("sharded.workers", len(fresh))
                recorder.count("sharded.shards_nonempty", nonempty)
                if resumed:
                    recorder.count("sharded.resumed_shards", len(resumed))
            merged = ViolationReport.merge(
                [outcome.report for outcome in outcomes]
            )
    return merged
