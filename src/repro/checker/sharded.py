"""Location-sharded parallel trace checking.

The optimized checker's state (paper Figures 6-9) is keyed entirely by
location: one :class:`~repro.checker.metadata.GlobalSpace` per location
and one :class:`~repro.checker.metadata.LocalCell` per (task, location).
Against an immutable, fully-built DPST the analysis of one location never
reads or writes another location's metadata, so a recorded trace can be
partitioned by location hash and each shard checked in its own process --
the verdict is the union of the per-shard verdicts.  The same holds for
the basic checker (per-location access histories) and the race detector
(per-location shadow cells); such observers advertise it with
``location_sharded = True``.  Velodrome does *not* qualify: its
happens-before graph spans locations, and sharding would silently drop
cross-location cycles, so the driver refuses it for ``jobs > 1``.

Sharding key: multi-variable annotation groups share one metadata cell, so
events are bucketed by ``annotations.metadata_key(location)`` -- a group's
members always land in the same shard.

Two input shapes:

* an in-memory :class:`~repro.trace.trace.Trace` -- events are partitioned
  in the parent and shipped to workers (with the DPST flattened once);
* a trace *file path* -- each worker streams the file itself through
  :class:`~repro.trace.serialize.TraceReader` and keeps only its shard, so
  the parent never materializes the events and traces larger than RAM can
  be checked.

Workers replay their shard with :func:`repro.trace.replay.replay_memory_events`
and return a :class:`~repro.report.ViolationReport`; the driver merges them
with :meth:`ViolationReport.merge`.

Static prefilter: ``skip_locations`` (normally produced by
``repro.static.lint`` serial-location proofs, via
``CheckSession.check(static_prefilter=...)``) drops every memory event on
those locations before replay -- in the parent for in-memory sources, in
each worker for streamed files, so ``jobs=1`` and ``jobs=N`` drop (and
count) exactly the same events.  The driver never decides *whether*
skipping is sound; callers must only pass locations proven
schedule-serial.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.checker import checker_name_of, make_checker
from repro.checker.annotations import AtomicAnnotations
from repro.errors import CheckerError, TraceError
from repro.report import ViolationReport
from repro.runtime.events import MemoryEvent
from repro.trace.replay import replay_memory_events
from repro.trace.serialize import (
    TraceReader,
    dpst_from_dict,
    dpst_to_dict,
    location_shard_key,
    open_trace,
)
from repro.trace.trace import Trace

Location = Hashable

#: Any form :func:`repro.checker.make_checker` accepts.
CheckerSpec = Any

TraceSource = Union[Trace, TraceReader, str, "os.PathLike[str]"]

#: Locations whose events the driver may drop (proven schedule-serial).
SkipLocations = Optional[frozenset]


def filter_skipped(
    events: Iterable[MemoryEvent],
    skip_locations: frozenset,
    recorder=None,
) -> Iterable[MemoryEvent]:
    """Drop events on *skip_locations*, counting every drop.

    The count lands on *recorder* (when enabled) as
    ``static.prefilter.events_skipped`` -- in the parent for in-memory
    sources and ``jobs=1``, in the worker snapshot for streamed shards,
    so the summed totals match across job counts.
    """
    counting = recorder is not None and recorder.enabled
    for event in events:
        if isinstance(event, MemoryEvent) and event.location in skip_locations:
            if counting:
                recorder.count("static.prefilter.events_skipped")
            continue
        yield event


def shard_for_location(location: Location, jobs: int) -> int:
    """Deterministic shard index of *location* in ``[0, jobs)``.

    Keys on :func:`~repro.trace.serialize.location_shard_key` (CRC-32 of
    the location's ``repr``) rather than Python's builtin ``hash``: string
    hashing is randomized per process (PYTHONHASHSEED), and every worker
    process must agree on the partition.  The same key is stamped on v2
    trace lines, so file-streaming workers route lines without decoding
    them.
    """
    if jobs <= 1:
        return 0
    return location_shard_key(location) % jobs


def partition_memory_events(
    events: Iterable[object],
    jobs: int,
    annotations: Optional[AtomicAnnotations] = None,
) -> List[List[MemoryEvent]]:
    """Bucket the memory events of *events* into ``jobs`` shards.

    Relative order within each shard is trace order.  With non-trivial
    *annotations*, bucketing keys on ``metadata_key`` so every member of a
    multi-variable group shares a shard (they share a metadata cell).
    """
    shards: List[List[MemoryEvent]] = [[] for _ in range(jobs)]
    keyed = annotations is not None and not annotations.trivial
    for event in events:
        if not isinstance(event, MemoryEvent):
            continue
        key = annotations.metadata_key(event.location) if keyed else event.location
        shards[shard_for_location(key, jobs)].append(event)
    return shards


def _require_shardable(checker: CheckerSpec) -> None:
    """Raise :class:`CheckerError` unless *checker* is per-location."""
    prototype = make_checker(checker) if isinstance(checker, str) else checker
    if not getattr(prototype, "location_sharded", False):
        raise CheckerError(
            f"checker {checker_name_of(checker)!r} is not location-sharded "
            "(its verdict depends on cross-location event order); "
            "run it with jobs=1"
        )


def _fresh_checker(spec: CheckerSpec):
    """Instantiate one shard's checker from a (possibly pickled) spec.

    Worker processes each get their own unpickled copy of an instance
    spec, so sharing a pre-built instance across shards is safe -- every
    shard replays into private state.
    """
    return make_checker(spec)


# -- worker bodies (top level so multiprocessing can pickle them) -----------


def _worker_recorder(collect: bool):
    """A per-shard :class:`~repro.obs.MetricsRecorder`, or ``None``.

    Workers never share a recorder with the parent -- each shard records
    into a private snapshot that travels back as a plain dict and is
    merged by :meth:`repro.obs.MetricsRecorder.add_shard`.
    """
    if not collect:
        return None
    from repro.obs import MetricsRecorder

    return MetricsRecorder()


def _worker_snapshot(recorder, elapsed: float):
    """Finalize a worker recorder into its wire-format snapshot dict."""
    if recorder is None:
        return None
    recorder.gauge("worker.elapsed_s", elapsed)
    recorder.gauge("worker.pid", float(os.getpid()))
    return recorder.snapshot().to_dict()


def _check_shard_events(
    args: Tuple[Any, ...]
) -> Tuple[ViolationReport, Optional[dict]]:
    """Replay one pre-partitioned shard of in-memory events."""
    (
        dpst_dict,
        events,
        spec,
        annotations,
        lca_cache,
        parallel_engine,
        collect,
    ) = args
    dpst = None if dpst_dict is None else dpst_from_dict(dpst_dict)
    recorder = _worker_recorder(collect)
    started = time.perf_counter()
    report = replay_memory_events(
        events,
        _fresh_checker(spec),
        dpst=dpst,
        annotations=annotations,
        lca_cache=lca_cache,
        parallel_engine=parallel_engine,
        recorder=recorder,
    )
    return report, _worker_snapshot(recorder, time.perf_counter() - started)


def _check_shard_from_file(
    args: Tuple[Any, ...]
) -> Tuple[ViolationReport, Optional[dict]]:
    """Stream a trace file and replay only this worker's shard."""
    (
        path,
        shard,
        jobs,
        spec,
        annotations,
        lca_cache,
        parallel_engine,
        collect,
        skip_locations,
    ) = args
    reader = open_trace(path)
    keyed = annotations is not None and not annotations.trivial

    if keyed:
        # Group-aware key: the line's "sk" stamp (raw location) may not
        # match metadata_key, so decode every line and re-key.
        def shard_stream():
            for event in reader.memory_events():
                key = annotations.metadata_key(event.location)
                if shard_for_location(key, jobs) == shard:
                    yield event

        events = shard_stream()
    else:
        # Fast path: the reader shard-filters raw lines by their "sk"
        # stamp, so this worker only JSON-decodes its own 1/jobs slice.
        events = reader.memory_events(shard=shard, jobs=jobs)

    recorder = _worker_recorder(collect)
    if skip_locations:
        # Each worker drops its own shard's skipped events (the parent
        # never sees the stream), counting into its private snapshot.
        events = filter_skipped(events, skip_locations, recorder)
    started = time.perf_counter()
    report = replay_memory_events(
        events,
        _fresh_checker(spec),
        dpst=reader.dpst,
        annotations=annotations,
        lca_cache=lca_cache,
        parallel_engine=parallel_engine,
        recorder=recorder,
    )
    return report, _worker_snapshot(recorder, time.perf_counter() - started)


def _pool_context():
    """Prefer fork (cheap, inherits the interpreter); fall back to default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def default_jobs() -> int:
    """Default worker count: one per CPU."""
    return os.cpu_count() or 1


def check_sharded(
    source: TraceSource,
    checker: CheckerSpec = "optimized",
    jobs: Optional[int] = None,
    annotations: Optional[AtomicAnnotations] = None,
    lca_cache: bool = True,
    parallel_engine: str = "lca",
    recorder=None,
    skip_locations: SkipLocations = None,
) -> ViolationReport:
    """Check *source* with ``jobs`` parallel per-location shards.

    Parameters
    ----------
    source:
        A :class:`Trace`, a :class:`TraceReader`, or a trace file path
        (either serialization format; the streaming JSONL format keeps
        memory bounded).
    checker:
        Anything :func:`repro.checker.make_checker` accepts -- a name, a
        checker class, or a pre-built instance.  With ``jobs > 1`` the
        checker must be ``location_sharded``.
    jobs:
        Worker process count; ``None`` means one per CPU; ``1`` checks
        in-process with no multiprocessing at all.
    annotations / lca_cache / parallel_engine:
        Forwarded to replay; annotations also steer the sharding key so
        multi-variable groups stay together.
    recorder:
        Optional :class:`repro.obs.Recorder`.  When enabled, each worker
        collects a private per-shard snapshot (counters, gauges, spans)
        that the driver folds back in with
        :meth:`~repro.obs.MetricsRecorder.add_shard`: counters sum into
        the parent totals while each shard's spans stay listed under the
        snapshot's ``shards`` array.  Disabled or ``None`` costs nothing.
    skip_locations:
        Locations proven schedule-serial by the static lint pass: their
        memory events are dropped before replay (and counted, never
        silently).  Soundness is the caller's responsibility -- use
        :meth:`repro.session.CheckSession.check` with
        ``static_prefilter=...`` for the safety-gated path.

    Returns the merged, deduplicated :class:`ViolationReport`.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise TraceError(f"jobs must be >= 1, got {jobs}")
    if skip_locations is not None and not skip_locations:
        skip_locations = None
    if skip_locations and recorder is not None and recorder.enabled:
        recorder.count("static.prefilter.locations", len(skip_locations))

    if isinstance(source, (str, os.PathLike)):
        reader: Optional[TraceReader] = open_trace(source)
        path: Optional[str] = reader.path
        trace: Optional[Trace] = None
    elif isinstance(source, TraceReader):
        reader = source
        path = source.path
        trace = None
    elif isinstance(source, Trace):
        reader = None
        path = None
        trace = source
    else:
        raise TraceError(
            f"cannot check {type(source).__name__}: expected a Trace, "
            "a TraceReader, or a trace file path"
        )

    if jobs == 1:
        events: Iterable[MemoryEvent]
        if trace is not None:
            events, dpst = trace.memory_events(), trace.dpst
        else:
            events, dpst = reader.memory_events(), reader.dpst
        if skip_locations:
            events = filter_skipped(events, skip_locations, recorder)
        return replay_memory_events(
            events,
            make_checker(checker),
            dpst=dpst,
            annotations=annotations,
            lca_cache=lca_cache,
            parallel_engine=parallel_engine,
            recorder=recorder,
        )

    _require_shardable(checker)
    collect = recorder is not None and recorder.enabled
    if collect:
        return _check_sharded_recorded(
            trace, reader, path, checker, jobs, annotations,
            lca_cache, parallel_engine, recorder, skip_locations,
        )
    context = _pool_context()
    if trace is not None:
        source_events: Iterable[object] = trace.events
        if skip_locations:
            # In-memory: the parent partitions, so the parent filters.
            source_events = filter_skipped(source_events, skip_locations)
        shards = partition_memory_events(source_events, jobs, annotations)
        dpst_dict = None if trace.dpst is None else dpst_to_dict(trace.dpst)
        work = [
            (dpst_dict, shard, checker, annotations, lca_cache, parallel_engine, False)
            for shard in shards
            if shard
        ]
        if not work:
            return ViolationReport()
        with context.Pool(processes=min(jobs, len(work))) as pool:
            results = pool.map(_check_shard_events, work)
    else:
        work = [
            (path, shard, jobs, checker, annotations, lca_cache,
             parallel_engine, False, skip_locations)
            for shard in range(jobs)
        ]
        with context.Pool(processes=jobs) as pool:
            results = pool.map(_check_shard_from_file, work)
    return ViolationReport.merge([report for report, _ in results])


def _check_sharded_recorded(
    trace: Optional[Trace],
    reader: Optional[TraceReader],
    path: Optional[str],
    checker: CheckerSpec,
    jobs: int,
    annotations: Optional[AtomicAnnotations],
    lca_cache: bool,
    parallel_engine: str,
    recorder,
    skip_locations: SkipLocations = None,
) -> ViolationReport:
    """The ``jobs > 1`` path with observability on.

    Identical control flow to the plain path, wrapped in the canonical
    spans (``sharded`` > ``partition`` / ``map`` / ``merge``) and folding
    per-shard snapshots into *recorder*.  Kept separate so the disabled
    path carries no span bookkeeping at all.
    """
    from repro.obs import SPAN_MAP, SPAN_MERGE, SPAN_PARTITION, SPAN_SHARDED

    context = _pool_context()
    with recorder.span(SPAN_SHARDED):
        if trace is not None:
            with recorder.span(SPAN_PARTITION):
                source_events: Iterable[object] = trace.events
                if skip_locations:
                    source_events = filter_skipped(
                        source_events, skip_locations, recorder
                    )
                shards = partition_memory_events(source_events, jobs, annotations)
                dpst_dict = None if trace.dpst is None else dpst_to_dict(trace.dpst)
                work = [
                    (dpst_dict, shard, checker, annotations,
                     lca_cache, parallel_engine, True)
                    for shard in shards
                    if shard
                ]
                shard_ids = [
                    index for index, shard in enumerate(shards) if shard
                ]
            if not work:
                recorder.count("sharded.workers", 0)
                return ViolationReport()
            with recorder.span(SPAN_MAP):
                with context.Pool(processes=min(jobs, len(work))) as pool:
                    results = pool.map(_check_shard_events, work)
        else:
            work = [
                (path, shard, jobs, checker, annotations,
                 lca_cache, parallel_engine, True, skip_locations)
                for shard in range(jobs)
            ]
            shard_ids = list(range(jobs))
            with recorder.span(SPAN_MAP):
                with context.Pool(processes=jobs) as pool:
                    results = pool.map(_check_shard_from_file, work)
        with recorder.span(SPAN_MERGE):
            nonempty = 0
            for shard_id, (_, snapshot) in zip(shard_ids, results):
                if snapshot is None:
                    continue
                recorder.add_shard(shard_id, snapshot)
                recorder.count("sharded.heartbeats")
                if snapshot.get("counters", {}).get("trace.events.routed"):
                    nonempty += 1
            recorder.count("sharded.workers", len(results))
            recorder.count("sharded.shards_nonempty", nonempty)
            merged = ViolationReport.merge([report for report, _ in results])
    return merged
