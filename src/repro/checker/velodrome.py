"""Velodrome baseline, reimplemented at step-node granularity.

Velodrome (Flanagan, Freund & Yi, PLDI 2008) is a sound and complete
dynamic atomicity checker for *the observed trace*: it builds a
transactional happens-before graph -- one node per atomic region, one edge
per pair of conflicting accesses ordered by the trace -- and reports a
violation when the graph acquires a cycle.  Following the paper's
evaluation (Section 4), the reimplementation treats every DPST step node
as a transaction, so the two checkers verify the same atomicity
specification and their overheads are directly comparable (Figure 13).

The crucial semantic difference this reproduction demonstrates: Velodrome
only sees the schedule that actually ran.  Under a serial executor, step
nodes never interleave, the conflict graph is acyclic, and Velodrome
reports nothing -- it must be combined with an interleaving explorer
(re-running the program under many schedules) to find what the optimized
checker finds in one run.  Feed it an interleaved trace (e.g. from
:mod:`repro.trace.explore` or a work-stealing run) and it detects the
violations *of that trace*.

Implementation notes
--------------------
* Per location we track the last writing transaction and the set of
  reading transactions since that write; each access adds conflict edges
  from those prior transactions to the current one.
* Fork/join and program-order edges cannot participate in cycles in a
  totally ordered trace (a cycle needs transactions whose lifetimes
  overlap), so only conflict edges are materialized.
* Cycle detection is an incremental DFS on edge insertion, with the found
  path reported.  The original's transaction garbage collection is
  omitted -- traces here are bounded.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.checker.annotations import AtomicAnnotations
from repro.report import AccessInfo, TraceCycleViolation, ViolationReport
from repro.runtime.events import MemoryEvent
from repro.runtime.observer import RuntimeObserver

Location = Hashable


class VelodromeChecker(RuntimeObserver):
    """Trace-sensitive atomicity checking via transaction-graph cycles."""

    # Velodrome does not need parallelism queries, but building the DPST
    # at runtime keeps step-node identities meaningful (the runtime only
    # mints step ids while constructing the tree).  Offline replay of
    # events that already carry step ids needs no tree at all.
    requires_dpst = True
    requires_lca = False
    checker_name = "velodrome"

    def __init__(self) -> None:
        self.report = ViolationReport()
        self._annotations: Optional[AtomicAnnotations] = None
        self._annotations_trivial = True
        #: location -> transaction (step) of the last write
        self._last_writer: Dict[Location, int] = {}
        #: location -> transactions that read since the last write
        self._readers: Dict[Location, Set[int]] = {}
        #: edge adjacency (conflict + program order): u -> set of v
        self._succ: Dict[int, Set[int]] = {}
        #: task id -> its most recent transaction (step), for the
        #: program-order edges the original algorithm also maintains
        self._last_txn_of_task: Dict[int, int] = {}
        self.edge_count = 0
        #: Accesses analyzed (observability counter; see repro.obs).
        self._accesses = 0

    # -- observer wiring ----------------------------------------------------

    def on_run_begin(self, run) -> None:
        self._annotations = run.annotations or AtomicAnnotations()
        self._annotations_trivial = self._annotations.trivial

    def on_memory(self, event: MemoryEvent) -> None:
        if self._annotations_trivial:
            key = event.location
        else:
            annotations = self._annotations
            if not annotations.is_checked(event.location):
                return
            key = annotations.metadata_key(event.location)
        self._accesses += 1
        txn = event.step
        previous = self._last_txn_of_task.get(event.task)
        if previous is None or previous != txn:
            self._last_txn_of_task[event.task] = txn
            if previous is not None:
                # Program-order edge between consecutive transactions of one
                # task.  These cannot close a cycle in a totally ordered
                # trace, but they are part of Velodrome's happens-before
                # graph and contribute to its bookkeeping cost.
                self._succ.setdefault(previous, set()).add(txn)
                self.edge_count += 1
        if event.is_read:
            self._on_read(key, txn, event)
        else:
            self._on_write(key, txn, event)

    # -- conflict tracking -----------------------------------------------------

    def _on_read(self, key: Location, txn: int, event: MemoryEvent) -> None:
        writer = self._last_writer.get(key)
        if writer is not None and writer != txn:
            self._add_edge(writer, txn, key, event)
        self._readers.setdefault(key, set()).add(txn)

    def _on_write(self, key: Location, txn: int, event: MemoryEvent) -> None:
        writer = self._last_writer.get(key)
        if writer is not None and writer != txn:
            self._add_edge(writer, txn, key, event)
        for reader in self._readers.get(key, ()):
            if reader != txn:
                self._add_edge(reader, txn, key, event)
        self._last_writer[key] = txn
        readers = self._readers.get(key)
        if readers:
            readers.clear()

    # -- graph maintenance --------------------------------------------------------

    def _add_edge(self, src: int, dst: int, key: Location, event: MemoryEvent) -> None:
        """Insert conflict edge ``src -> dst``; report if it closes a cycle."""
        successors = self._succ.setdefault(src, set())
        if dst in successors:
            return
        successors.add(dst)
        self.edge_count += 1
        path = self._find_path(dst, src)
        if path is not None:
            cycle = tuple(path)
            self.report.add_cycle(
                TraceCycleViolation(
                    location=key,
                    cycle=cycle,
                    closing_access=AccessInfo(
                        step=event.step,
                        access_type=event.access_type,
                        location=event.location,
                        task=event.task,
                        lockset=tuple(event.lockset),
                    ),
                    checker=self.checker_name,
                )
            )

    def _find_path(self, start: int, goal: int) -> Optional[List[int]]:
        """DFS for a path ``start -> ... -> goal`` in the conflict graph."""
        stack: List[int] = [start]
        parents: Dict[int, Optional[int]] = {start: None}
        while stack:
            node = stack.pop()
            if node == goal:
                path = [node]
                while parents[node] is not None:
                    node = parents[node]  # type: ignore[assignment]
                    path.append(node)
                path.reverse()
                return path
            for succ in self._succ.get(node, ()):
                if succ not in parents:
                    parents[succ] = node
                    stack.append(succ)
        return None

    # -- introspection -----------------------------------------------------------

    def transaction_count(self) -> int:
        """Transactions that participate in at least one conflict edge."""
        nodes = set(self._succ)
        for successors in self._succ.values():
            nodes.update(successors)
        return len(nodes)

    def metrics(self) -> Dict[str, int]:
        """Canonical ``repro.obs`` counters.

        Velodrome is trace-order sensitive (``location_sharded`` is
        ``False``), so these only ever describe a single in-process run.
        """
        return {
            "checker.accesses_checked": self._accesses,
            "checker.velodrome.edges": self.edge_count,
            "checker.velodrome.transactions": self.transaction_count(),
            "report.violations": len(self.report),
            "report.raw_findings": self.report.raw_count,
        }
