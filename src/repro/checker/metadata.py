"""Fixed-size metadata spaces for the optimized checker (Section 3.2.1).

Global space
------------
Twelve access-history entries per checked location (or per multi-variable
group):

* four *single-access* entries -- ``R1``, ``R2``, ``W1``, ``W2`` -- holding
  two distinct reads and two distinct writes by step nodes that can execute
  in parallel (when both slots of a kind are occupied);
* four *two-access* patterns -- ``RR``, ``RW``, ``WR``, ``WW`` -- each a
  pair of accesses performed by one step node, i.e. eight entries.

Local space
-----------
Per task and location, the first read and the first write performed by the
task's *current step node* (the paper stores them per task; entries here
are stamped with their step so a stale entry from an earlier step of the
same task is discarded rather than paired across atomic-region boundaries
-- see DESIGN.md).  The local space is the interim buffer holding a first
access until a second access by the same step forms a two-access pattern
eligible for promotion to the global space.

Replacement policy (Figures 8 and 9): a slot is overwritten only when it is
empty or its occupant's step executes *in series* with the current step, so
occupied slots always describe accesses that remain relevant as potential
interleavers / victims for future parallel accesses.

``thorough`` mode
-----------------
The pseudocode keeps exactly one pattern per kind.  When an existing
pattern is *parallel* to a newly formed one, the new pattern is dropped --
which loses completeness in rare topologies (two mutually parallel steps
both forming patterns, with a later interleaver parallel to only one of
them; see DESIGN.md and ``tests/test_opt_corner_cases.py``).
:class:`GlobalSpace` therefore optionally keeps an *overflow list* of
additional mutually-parallel patterns per kind, restoring equivalence with
the basic checker at the cost of unbounded (in theory; tiny in practice)
metadata.  The optimized checker enables it with ``mode="thorough"``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.checker.access import AccessEntry, TwoAccessPattern

Location = Hashable

#: Signature of the parallelism oracle handed to the spaces.
ParallelFn = Callable[[int, int], bool]

SINGLE_KINDS = ("R1", "R2", "W1", "W2")
PATTERN_KINDS = ("RR", "RW", "WR", "WW")


class GlobalSpace:
    """The twelve global access-history entries of one location/group."""

    __slots__ = (
        "R1",
        "R2",
        "W1",
        "W2",
        "RR",
        "RW",
        "WR",
        "WW",
        "version",
        "_overflow",
    )

    def __init__(self) -> None:
        self.R1: Optional[AccessEntry] = None
        self.R2: Optional[AccessEntry] = None
        self.W1: Optional[AccessEntry] = None
        self.W2: Optional[AccessEntry] = None
        self.RR: Optional[TwoAccessPattern] = None
        self.RW: Optional[TwoAccessPattern] = None
        self.WR: Optional[TwoAccessPattern] = None
        self.WW: Optional[TwoAccessPattern] = None
        #: Bumped on every mutation.  Local cells stamp the version they
        #: last checked against, so a step repeating the same access kind
        #: against an unchanged space can skip the (identical) re-checks --
        #: the checker-level analogue of the paper's LCA-query caching.
        self.version = 0
        #: Extra mutually-parallel patterns per kind (thorough mode only).
        self._overflow: Optional[Dict[str, List[TwoAccessPattern]]] = None

    # -- single-access entries --------------------------------------------

    def singles(self, kind: str) -> Tuple[Optional[AccessEntry], Optional[AccessEntry]]:
        """The (first, second) single slots for ``kind`` ``"R"`` or ``"W"``."""
        if kind == "R":
            return self.R1, self.R2
        return self.W1, self.W2

    def read_singles(self) -> Iterable[AccessEntry]:
        """The occupied read single-access entries."""
        if self.R1 is not None:
            yield self.R1
        if self.R2 is not None:
            yield self.R2

    def write_singles(self) -> Iterable[AccessEntry]:
        """The occupied write single-access entries."""
        if self.W1 is not None:
            yield self.W1
        if self.W2 is not None:
            yield self.W2

    def update_single(
        self, kind: str, entry: AccessEntry, parallel: ParallelFn
    ) -> None:
        """Install *entry* into an ``R1/R2`` or ``W1/W2`` slot.

        Figures 8/9 rule: take the first slot that is empty or whose
        occupant is in series with the new entry's step; if both slots hold
        parallel accesses the entry is dropped (two parallel witnesses of
        the kind already exist).
        """
        step = entry.step
        if kind == "R":
            if self.R1 is None or not parallel(self.R1.step, step):
                self.R1 = entry
                self.version += 1
            elif self.R2 is None or not parallel(self.R2.step, step):
                self.R2 = entry
                self.version += 1
        else:
            if self.W1 is None or not parallel(self.W1.step, step):
                self.W1 = entry
                self.version += 1
            elif self.W2 is None or not parallel(self.W2.step, step):
                self.W2 = entry
                self.version += 1

    # -- two-access patterns -----------------------------------------------

    def pattern(self, kind: str) -> Optional[TwoAccessPattern]:
        """The primary pattern slot for *kind* (``RR``/``RW``/``WR``/``WW``)."""
        return getattr(self, kind)

    def patterns(self, kind: str) -> Iterable[TwoAccessPattern]:
        """All stored patterns of *kind*: primary slot plus overflow."""
        primary = getattr(self, kind)
        if primary is not None:
            yield primary
        if self._overflow is not None:
            yield from self._overflow.get(kind, ())

    def all_patterns(self) -> Iterable[TwoAccessPattern]:
        """Every stored pattern of every kind."""
        for kind in PATTERN_KINDS:
            yield from self.patterns(kind)

    def update_pattern(
        self,
        kind: str,
        candidate: TwoAccessPattern,
        parallel: ParallelFn,
        thorough: bool = False,
    ) -> bool:
        """Install *candidate* into the pattern slot for *kind*.

        The paper's rule: store when the slot is empty or the occupant is
        in series with the candidate's step.  In ``thorough`` mode a
        candidate blocked by a *parallel* occupant is appended to the
        overflow list instead of being dropped (unless the same step
        already stored a pattern of this kind).

        Returns ``True`` when the candidate was stored somewhere.
        """
        current = getattr(self, kind)
        if current is None or not parallel(current.step, candidate.step):
            setattr(self, kind, candidate)
            self.version += 1
            return True
        if not thorough:
            return False
        if current.step == candidate.step:
            return False
        if self._overflow is None:
            self._overflow = {}
        extras = self._overflow.setdefault(kind, [])
        for stored in extras:
            if stored.step == candidate.step:
                return False
            if not parallel(stored.step, candidate.step):
                extras.remove(stored)
                extras.append(candidate)
                self.version += 1
                return True
        extras.append(candidate)
        self.version += 1
        return True

    # -- accounting ----------------------------------------------------------

    def entry_count(self) -> int:
        """Occupied entries, counting each pattern as two (max 12 in paper mode)."""
        count = sum(1 for kind in SINGLE_KINDS if getattr(self, kind) is not None)
        count += 2 * sum(1 for kind in PATTERN_KINDS if getattr(self, kind) is not None)
        if self._overflow is not None:
            count += 2 * sum(len(extras) for extras in self._overflow.values())
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = []
        for kind in SINGLE_KINDS + PATTERN_KINDS:
            value = getattr(self, kind)
            if value is not None:
                parts.append(f"{kind}={value!r}")
        return "<GS " + " ".join(parts) + ">"


class LocalCell:
    """Per-(task, location) local metadata: first read and first write.

    ``step`` stamps the step node the cell belongs to; the checker discards
    cells whose step differs from the current access's step (a task's
    earlier step is a different atomic region).
    """

    __slots__ = (
        "step",
        "read",
        "write",
        "ver_rr",
        "ver_wr",
        "ver_rw",
        "ver_ww",
        "ver_sr",
        "ver_sw",
    )

    def __init__(self, step: int) -> None:
        self.step = step
        self.read: Optional[AccessEntry] = None
        self.write: Optional[AccessEntry] = None
        # Global-space versions at which this cell last ran each check
        # (pattern kinds and single-slot updates).  -1 = never.
        self.ver_rr = -1
        self.ver_wr = -1
        self.ver_rw = -1
        self.ver_ww = -1
        self.ver_sr = -1
        self.ver_sw = -1

    @property
    def is_empty(self) -> bool:
        return self.read is None and self.write is None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<LS step={self.step} R={self.read!r} W={self.write!r}>"


class LocalSpace:
    """All local metadata of one task: location/group key -> cell."""

    __slots__ = ("task_id", "_cells")

    def __init__(self, task_id: int) -> None:
        self.task_id = task_id
        self._cells: Dict[Location, LocalCell] = {}

    def cell_for(self, key: Location, step: int) -> Tuple[LocalCell, bool]:
        """The cell for *key* valid at *step*.

        Returns ``(cell, had_prior)`` where ``had_prior`` says whether a
        non-stale cell with at least one recorded access already existed --
        i.e. whether this is a *non-first* access by the current step.
        Stale cells (older step) are replaced by a fresh empty cell.
        """
        cell = self._cells.get(key)
        if cell is None or cell.step != step:
            cell = LocalCell(step)
            self._cells[key] = cell
            return cell, False
        return cell, not cell.is_empty

    def entry_count(self) -> int:
        """Occupied local entries across all locations (2 per cell max)."""
        return sum(
            (cell.read is not None) + (cell.write is not None)
            for cell in self._cells.values()
        )

    def cell_count(self) -> int:
        """Number of live cells (one per location this task has touched)."""
        return len(self._cells)

    def evict_stale(self) -> int:
        """Drop every cell stamped with an older step than the task's newest.

        A task's step ids strictly increase over its execution (DPST node
        ids are allocated in creation order), so any cell whose step is not
        the maximum across this space is *stale*: :meth:`cell_for` would
        replace it with a fresh empty cell on the task's next access to
        that location, and no checker code path ever reads another task's
        cells.  Evicting stale cells is therefore observationally invisible
        -- it is the compaction primitive behind
        :class:`repro.checker.streaming.StreamingChecker`.

        Returns the number of cells evicted.
        """
        if len(self._cells) <= 1:
            return 0
        newest = max(cell.step for cell in self._cells.values())
        stale = [key for key, cell in self._cells.items() if cell.step != newest]
        for key in stale:
            del self._cells[key]
        return len(stale)
