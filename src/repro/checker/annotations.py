"""Programmer-provided atomicity annotations.

The paper's model: some atomicity violations are intentional (spin loops,
reductions), so the programmer annotates which memory locations must be
accessed atomically within a step node.  The prototype used C type
qualifiers processed by Clang; here annotations are attached to a
:class:`repro.runtime.program.TaskProgram`.

Two extra capabilities from Section 3:

* **check-everything mode** (the default when nothing is annotated) --
  convenient for test programs whose every location is meant to be atomic;
* **multi-variable groups** -- "when multiple locations are required to be
  accessed atomically, our approach provides the same metadata to all
  those locations": grouped locations share one metadata cell, so an
  interleaving access to *any* member can violate the atomicity of a
  two-access pattern spanning members.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

Location = Hashable


class AtomicAnnotations:
    """Maps locations to metadata keys and answers "is this checked?".

    A *metadata key* identifies the metadata cell used for a location.
    Ungrouped locations use themselves as key; grouped locations share the
    group's key.  When ``check_all`` is true (the default with no explicit
    annotations) every location is checked; otherwise only annotated
    locations and group members are.
    """

    def __init__(self, check_all: Optional[bool] = None) -> None:
        self._explicit: Set[Location] = set()
        self._group_of: Dict[Location, Tuple[str, ...]] = {}
        self._groups: Dict[Tuple[str, ...], List[Location]] = {}
        self._check_all_override = check_all

    # -- population ------------------------------------------------------

    def annotate(self, *locations: Location) -> "AtomicAnnotations":
        """Mark individual locations as atomic (each its own metadata cell)."""
        self._explicit.update(locations)
        return self

    def annotate_group(
        self, name: str, locations: Sequence[Location]
    ) -> "AtomicAnnotations":
        """Mark *locations* as one multi-variable atomic group.

        All members share the metadata cell ``("group", name)``.
        """
        key = ("group", name)
        members = self._groups.setdefault(key, [])
        for location in locations:
            if location in self._group_of and self._group_of[location] != key:
                raise ValueError(
                    f"location {location!r} is already in group "
                    f"{self._group_of[location]!r}"
                )
            self._group_of[location] = key
            if location not in members:
                members.append(location)
        return self

    def annotate_prefix(self, prefix: str) -> "AtomicAnnotations":
        """Convenience: treat ``(prefix, i)`` tuple locations as annotated.

        Workloads name array elements as ``(array_name, index)``; this
        annotates the whole array without enumerating indices.
        """
        self._explicit.add(("__prefix__", prefix))
        return self

    # -- queries ----------------------------------------------------------

    @property
    def trivial(self) -> bool:
        """Every location checked and no grouping: checkers may skip the
        per-access annotation lookups entirely (hot-path fast path)."""
        return self.check_all and not self._group_of

    @property
    def check_all(self) -> bool:
        """Whether unannotated locations are checked too."""
        if self._check_all_override is not None:
            return self._check_all_override
        return not self._explicit and not self._group_of

    def is_checked(self, location: Location) -> bool:
        """Should accesses to *location* be checked at all?"""
        if self.check_all:
            return True
        if location in self._explicit or location in self._group_of:
            return True
        if isinstance(location, tuple) and location:
            return ("__prefix__", location[0]) in self._explicit
        return False

    def metadata_key(self, location: Location) -> Location:
        """The metadata cell key for *location* (group key if grouped)."""
        return self._group_of.get(location, location)

    def group_members(self, name: str) -> List[Location]:
        """The member locations of group *name* (insertion order)."""
        return list(self._groups.get(("group", name), []))

    def groups(self) -> Iterable[Tuple[Tuple[str, ...], List[Location]]]:
        """All (group key, members) pairs."""
        return ((key, list(members)) for key, members in self._groups.items())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<AtomicAnnotations check_all={self.check_all} "
            f"explicit={len(self._explicit)} groups={len(self._groups)}>"
        )
