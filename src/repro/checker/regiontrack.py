"""RegionTrack-style sound *and complete* baseline (arXiv:2008.04479).

RegionTrack observes that atomicity checking never needs the full access
history the basic checker keeps: every triple verdict depends only on the
access *types*, the performing step nodes ("atomic regions" here are the
DPST step nodes, exactly as in the rest of this repo), lockset disjointness
*within* a region, and region parallelism.  So one constant-size summary
per ``(location, step)`` region suffices:

* one witness read and one witness write (the interleaver ``A2`` role and
  the single-access side of a candidate check -- the interleaver's lockset
  is never consulted, so the first access of each type stands in for all);
* the first read / first write per *distinct lockset* (pair formation: a
  later access pairs with an earlier same-region access iff their locksets
  are disjoint, and all accesses sharing a lockset are interchangeable as
  the pair's first element);
* one witness :class:`~repro.checker.access.TwoAccessPattern` per kind
  (``RR``/``RW``/``WR``/``WW`` -- a second pair of a kind can never flag a
  location its first witness does not).

Each access then (1) probes the pair witnesses of parallel regions as an
interleaver and (2) probes the single witnesses of parallel regions with
any newly formed pair -- the same symmetric closure as
:class:`~repro.checker.basic.BasicAtomicityChecker`, making the two
checkers agree location-for-location (pinned by
``tests/test_regiontrack.py`` and the ``regiontrack-precision`` fuzz
oracle leg).  Memory is ``O(locations x regions x distinct locksets)``
instead of the basic checker's ``O(dynamic accesses)``, and the per-access
scan touches summaries, not histories.

Together with velodrome (unsound-by-design, trace-sensitive) this anchors
the *complete* side of the oracle sandwich
``velodrome ⊑ optimized ⊑ regiontrack`` (DESIGN.md §7).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional

from repro.checker.access import EMPTY_LOCKSET, AccessEntry, TwoAccessPattern
from repro.checker.annotations import AtomicAnnotations
from repro.checker.patterns import pattern_violated_by, triple_code
from repro.errors import CheckerError
from repro.report import AtomicityViolation, ViolationReport
from repro.runtime.events import MemoryEvent
from repro.runtime.observer import RuntimeObserver

Location = Hashable


class _Region:
    """Constant-size summary of one (location, step) atomic region."""

    __slots__ = (
        "read_witness",
        "write_witness",
        "reads_by_lockset",
        "writes_by_lockset",
        "pairs",
        "probed_read_gen",
        "probed_write_gen",
    )

    def __init__(self) -> None:
        self.read_witness: Optional[AccessEntry] = None
        self.write_witness: Optional[AccessEntry] = None
        self.reads_by_lockset: Dict[FrozenSet[str], AccessEntry] = {}
        self.writes_by_lockset: Dict[FrozenSet[str], AccessEntry] = {}
        self.pairs: Dict[str, TwoAccessPattern] = {}
        # Location pair-generation stamps: a repeat access of the same
        # type probes the (unchanged) parallel pair witnesses identically,
        # so it can be skipped -- the regiontrack analogue of the
        # optimized checker's global-space version memo.
        self.probed_read_gen = -1
        self.probed_write_gen = -1


class _LocationRegions:
    """All region summaries of one location/group."""

    __slots__ = ("by_step", "pair_gen")

    def __init__(self) -> None:
        self.by_step: Dict[int, _Region] = {}
        #: Bumped whenever any region of this location stores a new pair
        #: witness; regions stamp it after an interleaver probe.
        self.pair_gen = 0


class RegionTrackChecker(RuntimeObserver):
    """Per-region constant-size summaries; sound and complete per location."""

    requires_dpst = True
    location_sharded = True
    checker_name = "regiontrack"

    def __init__(self) -> None:
        self.report = ViolationReport()
        self._regions: Dict[Location, _LocationRegions] = {}
        self._engine = None
        self._annotations: Optional[AtomicAnnotations] = None
        self._annotations_trivial = True
        # Observability counters (see repro.obs).
        self._accesses = 0
        self._pair_witnesses = 0
        self._lockset_entries = 0
        self._triple_checks = 0
        self._memo_hits = 0

    # -- observer wiring ----------------------------------------------------

    def on_run_begin(self, run) -> None:
        engine = getattr(run, "engine", None)
        if engine is None or not callable(getattr(engine, "parallel", None)):
            raise CheckerError(
                "RegionTrackChecker requires a parallelism engine "
                "(any repro.dpst.engines.ParallelismEngine)"
            )
        self._engine = engine
        self._annotations = run.annotations or AtomicAnnotations()
        self._annotations_trivial = self._annotations.trivial

    def on_memory(self, event: MemoryEvent) -> None:
        if self._annotations_trivial:
            key = event.location
        else:
            annotations = self._annotations
            if not annotations.is_checked(event.location):
                return
            key = annotations.metadata_key(event.location)
        self._accesses += 1
        raw_lockset = event.lockset
        entry = AccessEntry(
            event.step,
            event.access_type,
            event.task,
            event.location,
            frozenset(raw_lockset) if raw_lockset else EMPTY_LOCKSET,
        )
        location = self._regions.get(key)
        if location is None:
            location = _LocationRegions()
            self._regions[key] = location
        region = location.by_step.get(entry.step)
        if region is None:
            region = _Region()
            location.by_step[entry.step] = region
        self._probe_as_interleaver(key, location, region, entry)
        new_pairs = self._form_pairs(location, region, entry)
        for pattern in new_pairs:
            self._probe_pair_against_singles(key, location, pattern)
        self._record(region, entry)

    # -- the two symmetric probes -------------------------------------------------

    def _probe_as_interleaver(
        self,
        key: Location,
        location: _LocationRegions,
        region: _Region,
        entry: AccessEntry,
    ) -> None:
        """Current access as ``A2`` against parallel regions' pair witnesses."""
        if entry.is_read:
            if region.probed_read_gen == location.pair_gen:
                self._memo_hits += 1
                return
            region.probed_read_gen = location.pair_gen
        else:
            if region.probed_write_gen == location.pair_gen:
                self._memo_hits += 1
                return
            region.probed_write_gen = location.pair_gen
        parallel = self._engine.parallel
        for step, other in location.by_step.items():
            if step == entry.step or not other.pairs:
                continue
            if not parallel(step, entry.step):
                continue
            for pattern in other.pairs.values():
                self._triple_checks += 1
                if pattern_violated_by(pattern, entry):
                    self._report(key, pattern, entry)

    def _form_pairs(
        self, location: _LocationRegions, region: _Region, entry: AccessEntry
    ) -> List[TwoAccessPattern]:
        """New pair witnesses ending at the current access.

        A pair needs disjoint locksets (Section 3.3 lock rule), hence the
        scan over the distinct-lockset firsts; the first disjoint witness
        of each kind is stored, later ones add nothing per location.
        """
        second_letter = "R" if entry.is_read else "W"
        formed: List[TwoAccessPattern] = []

        def try_form(first: AccessEntry, kind: str) -> None:
            if kind in region.pairs or not first.locks_disjoint(entry):
                return
            pattern = TwoAccessPattern(first, entry)
            region.pairs[kind] = pattern
            location.pair_gen += 1
            self._pair_witnesses += 1
            formed.append(pattern)

        for first in region.reads_by_lockset.values():
            try_form(first, "R" + second_letter)
        for first in region.writes_by_lockset.values():
            try_form(first, "W" + second_letter)
        return formed

    def _probe_pair_against_singles(
        self, key: Location, location: _LocationRegions, pattern: TwoAccessPattern
    ) -> None:
        """New pair as ``(A1, A3)`` against parallel regions' witnesses."""
        parallel = self._engine.parallel
        step = pattern.step
        for other_step, other in location.by_step.items():
            if other_step == step or not parallel(other_step, step):
                continue
            for single in (other.write_witness, other.read_witness):
                if single is None:
                    continue
                self._triple_checks += 1
                if pattern_violated_by(pattern, single):
                    self._report(key, pattern, single)

    def _record(self, region: _Region, entry: AccessEntry) -> None:
        if entry.is_read:
            if region.read_witness is None:
                region.read_witness = entry
            if entry.lockset not in region.reads_by_lockset:
                region.reads_by_lockset[entry.lockset] = entry
                self._lockset_entries += 1
        else:
            if region.write_witness is None:
                region.write_witness = entry
            if entry.lockset not in region.writes_by_lockset:
                region.writes_by_lockset[entry.lockset] = entry
                self._lockset_entries += 1

    def _report(
        self, key: Location, pattern: TwoAccessPattern, interleaver: AccessEntry
    ) -> None:
        self.report.add(
            AtomicityViolation(
                location=key,
                first=pattern.first.info(),
                second=interleaver.info(),
                third=pattern.second.info(),
                pattern=triple_code(
                    pattern.first.access_type,
                    interleaver.access_type,
                    pattern.second.access_type,
                ),
                checker=self.checker_name,
            )
        )

    # -- introspection -------------------------------------------------------------

    def total_regions(self) -> int:
        """Region summaries materialized across all locations."""
        return sum(len(loc.by_step) for loc in self._regions.values())

    # -- observability (repro.obs metric registry) ---------------------------------

    def metrics(self) -> Dict[str, int]:
        """Canonical ``repro.obs`` counters; shard-summable like the
        other per-location checkers."""
        return {
            "checker.accesses_checked": self._accesses,
            "checker.regiontrack.regions": self.total_regions(),
            "checker.regiontrack.pair_witnesses": self._pair_witnesses,
            "checker.regiontrack.lockset_entries": self._lockset_entries,
            "checker.regiontrack.triple_checks": self._triple_checks,
            "checker.regiontrack.memo_hits": self._memo_hits,
            "checker.regiontrack.tracked_locations": len(self._regions),
            "report.violations": len(self.report),
            "report.raw_findings": self.report.raw_count,
        }
