"""Online / streaming checking with bounded memory.

:class:`StreamingChecker` wraps a compactable checker (today: the
optimized checker) and consumes events *one at a time* -- attached live to
the runtime observer chain, or fed from a :class:`repro.trace.TraceReader`
stream (v2 JSONL and v3 columnar alike) without ever materializing the
trace.  Every ``window`` memory events it runs a *compaction sweep*:

* :meth:`~repro.checker.optimized.OptAtomicityChecker.release_task` for
  every task whose end event fell inside the window (a finished task never
  accesses again, so its local metadata is dead);
* :meth:`~repro.checker.optimized.OptAtomicityChecker.compact` to evict
  *stale* local cells -- cells stamped with an older step than their
  task's newest, which ``cell_for`` would replace on the next touch
  anyway.

Both evictions are observationally invisible: no check path ever reads an
evicted cell again, so the report is byte-identical (after
``normalize_report``) to an offline check at *every* window, including
``window=1`` and no-compaction.  What the window buys is memory: peak live
local metadata is bounded by the eviction debt one window can accumulate
(live tasks plus stale cells created since the last sweep), not by the
number of tasks or events in the trace.  The global spaces stay resident
-- they are the paper's fixed twelve entries per location, i.e. program
state, not trace state.

When streaming refuses
----------------------
Wrapping requires the inner checker to implement the compaction protocol
(``compact()``; ``release_task()`` is optional).  Checkers that keep
trace-global state have nothing sound to evict and are refused with a
:class:`~repro.errors.CheckerError`:

* ``velodrome`` (and ``velodrome+explorer``) -- the cross-location
  happens-before graph needs every node until the end of the trace;
* ``basic`` and ``regiontrack`` -- their completeness rests on unbounded
  per-location histories.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CheckerError
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
    SyncEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSpawnEvent,
)
from repro.runtime.observer import RuntimeObserver

#: Events between compaction sweeps when the caller does not say.
DEFAULT_WINDOW = 4096


class StreamingChecker(RuntimeObserver):
    """Windowed incremental wrapper around a compactable checker.

    Parameters
    ----------
    window:
        Memory events between compaction sweeps; ``None`` disables
        periodic compaction entirely (the ∞ window -- wrapper bookkeeping
        only, memory behaves like the offline checker).
    checker:
        Anything :func:`repro.checker.make_checker` accepts; the built
        inner checker must expose the compaction protocol (a ``compact()``
        method).  Extra keyword arguments go to the inner factory, e.g.
        ``StreamingChecker(checker="optimized", mode="thorough")``.
    """

    checker_name = "streaming"

    def __init__(
        self, window: Optional[int] = DEFAULT_WINDOW, checker="optimized", **checker_kwargs
    ) -> None:
        if window is not None and (not isinstance(window, int) or window < 1):
            raise CheckerError(
                f"streaming window must be a positive event count or None "
                f"(no periodic compaction), got {window!r}"
            )
        from repro.checker import checker_name_of, make_checker

        inner = make_checker(checker, **checker_kwargs)
        if not callable(getattr(inner, "compact", None)):
            raise CheckerError(
                f"checker {checker_name_of(inner)!r} cannot stream: it lacks "
                "the compaction protocol (a compact() method evicting "
                "provably dead metadata).  Trace-global analyses such as "
                "velodrome's happens-before graph, and unbounded-history "
                "checkers such as basic/regiontrack, have nothing sound to "
                "evict -- check them offline instead."
            )
        self.window = window
        self.inner = inner
        # Mirror the inner checker's capabilities: the wrapper adds no
        # requirement of its own and shards exactly when the inner does.
        self.requires_dpst = inner.requires_dpst
        self.requires_lca = getattr(inner, "requires_lca", inner.requires_dpst)
        self.location_sharded = inner.location_sharded
        self._since_sweep = 0
        self._ended_tasks: List[int] = []
        # Observability (flushed at phase boundaries via metrics()).
        self._events = 0
        self._compactions = 0
        self._evicted = 0
        self._peak_window = 0

    # -- report / metrics delegation ---------------------------------------

    @property
    def report(self):
        return self.inner.report

    def metrics(self) -> Dict[str, int]:
        """Inner counters plus the streaming-specific ones.

        ``streaming.events`` partitions exactly across location-disjoint
        shards; the other three depend on per-shard sweep cadence and are
        listed in :data:`repro.obs.SHARD_SENSITIVE_METRICS`.
        """
        merged = dict(self.inner.metrics())
        merged["streaming.events"] = self._events
        merged["streaming.compactions"] = self._compactions
        merged["streaming.evicted"] = self._evicted
        merged["streaming.peak_window"] = self._peak_window
        return merged

    # -- compaction ---------------------------------------------------------

    def _live_entries(self) -> int:
        probe = getattr(self.inner, "total_local_entries", None)
        return probe() if callable(probe) else 0

    def _sweep(self) -> None:
        self._peak_window = max(self._peak_window, self._live_entries())
        release = getattr(self.inner, "release_task", None)
        if self._ended_tasks and callable(release):
            for task_id in self._ended_tasks:
                self._evicted += release(task_id)
        self._ended_tasks.clear()
        self._evicted += self.inner.compact()
        self._compactions += 1
        self._since_sweep = 0

    # -- observer wiring ----------------------------------------------------

    def on_run_begin(self, run) -> None:
        self.inner.on_run_begin(run)

    def on_run_end(self, run) -> None:
        # Measure the trailing partial window, but do not sweep: the run is
        # over, and leaving the inner state untouched keeps post-run
        # metadata accounting (local_entries etc.) meaningful.
        self._peak_window = max(self._peak_window, self._live_entries())
        self.inner.on_run_end(run)

    def on_memory(self, event: MemoryEvent) -> None:
        self.inner.on_memory(event)
        self._events += 1
        if self.window is not None:
            self._since_sweep += 1
            if self._since_sweep >= self.window:
                self._sweep()

    def on_task_end(self, event: TaskEndEvent) -> None:
        self.inner.on_task_end(event)
        # Release lazily at the next sweep so *all* eviction is governed by
        # the window (window=None really does mean "never evict").
        self._ended_tasks.append(event.task)

    def on_task_spawn(self, event: TaskSpawnEvent) -> None:
        self.inner.on_task_spawn(event)

    def on_task_begin(self, event: TaskBeginEvent) -> None:
        self.inner.on_task_begin(event)

    def on_sync(self, event: SyncEvent) -> None:
        self.inner.on_sync(event)

    def on_acquire(self, event: AcquireEvent) -> None:
        self.inner.on_acquire(event)

    def on_release(self, event: ReleaseEvent) -> None:
        self.inner.on_release(event)
