"""The basic atomicity checker (paper Figure 3, made symmetric).

Maintains, for every checked location, the *complete* history of dynamic
accesses as ``<step, type, lockset>`` entries.  On each access it searches
for an unserializable triple involving the current access in either role:

1. **current as A3** (the literal Figure 3 check): a prior access ``p`` by
   the same step plus a prior access ``q`` by a logically parallel step,
   with ``(p, q, current)`` unserializable;
2. **current as A2** (symmetric completion): a prior *pair* ``(p, r)`` by
   one parallel step, with ``(p, current, r)`` unserializable.

The second check is not in the paper's Figure 3 pseudocode, but without it
the basic algorithm misses violations whose interleaving access appears in
the trace only *after* the two-access pattern has completed -- a case the
optimized algorithm explicitly covers in HandleFirstAccessCurrentTask
(Figure 8).  Adding it makes this checker the sound *and complete*
reference the others are validated against (see
``tests/test_checker_equivalence.py``).

Lock handling: a same-step pair only anchors a triple when the versioned
locksets of its two accesses are disjoint (different critical sections,
Section 3.3).  The interleaver's own lockset is not consulted -- it can
always slot between two critical sections.

This is the reference analysis: sound, precise and complete (under the
paper's trace-coverage assumption), but its metadata grows with the number
of dynamic accesses and every access pays a scan over the history -- the
motivation for the fixed-size metadata of
:class:`repro.checker.optimized.OptAtomicityChecker`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional

from repro.checker.access import EMPTY_LOCKSET, AccessEntry
from repro.checker.annotations import AtomicAnnotations
from repro.checker.patterns import is_unserializable_triple, triple_code
from repro.errors import CheckerError
from repro.report import AtomicityViolation, ViolationReport
from repro.runtime.events import MemoryEvent
from repro.runtime.observer import RuntimeObserver

Location = Hashable


class _History:
    """Per-location access history, indexed flat and by step."""

    __slots__ = ("entries", "by_step")

    def __init__(self) -> None:
        self.entries: List[AccessEntry] = []
        self.by_step: Dict[int, List[AccessEntry]] = defaultdict(list)

    def append(self, entry: AccessEntry) -> None:
        self.entries.append(entry)
        self.by_step[entry.step].append(entry)


class BasicAtomicityChecker(RuntimeObserver):
    """Unbounded access histories, checked on every access (Figure 3+)."""

    requires_dpst = True
    location_sharded = True
    checker_name = "basic"

    def __init__(self) -> None:
        self.report = ViolationReport()
        self._history: Dict[Location, _History] = {}
        self._engine = None
        self._annotations: Optional[AtomicAnnotations] = None
        #: Accesses analyzed (observability counter; see repro.obs).
        self._accesses = 0

    # -- observer wiring ----------------------------------------------------

    def on_run_begin(self, run) -> None:
        engine = getattr(run, "engine", None)
        if engine is None or not callable(getattr(engine, "parallel", None)):
            raise CheckerError(
                "BasicAtomicityChecker requires a parallelism engine "
                "(any repro.dpst.engines.ParallelismEngine)"
            )
        self._engine = engine
        self._annotations = run.annotations or AtomicAnnotations()
        self._annotations_trivial = self._annotations.trivial

    def on_memory(self, event: MemoryEvent) -> None:
        if self._annotations_trivial:
            key = event.location
        else:
            annotations = self._annotations
            if not annotations.is_checked(event.location):
                return
            key = annotations.metadata_key(event.location)
        self._accesses += 1
        raw_lockset = event.lockset
        entry = AccessEntry(
            event.step,
            event.access_type,
            event.task,
            event.location,
            frozenset(raw_lockset) if raw_lockset else EMPTY_LOCKSET,
        )
        history = self._history.get(key)
        if history is None:
            history = _History()
            self._history[key] = history
        self._check_current_as_pair_end(key, history, entry)
        self._check_current_as_interleaver(key, history, entry)
        history.append(entry)

    # -- the two triple searches ---------------------------------------------------

    def _check_current_as_pair_end(
        self, key: Location, history: _History, current: AccessEntry
    ) -> None:
        """Current access closes a same-step pair (Figure 3 literal)."""
        same_step = history.by_step.get(current.step)
        if not same_step:
            return
        parallel = self._engine.parallel
        for step, others in history.by_step.items():
            if step == current.step or not parallel(current.step, step):
                continue
            for q in others:
                for p in same_step:
                    if not p.locks_disjoint(current):
                        continue
                    if is_unserializable_triple(
                        p.access_type, q.access_type, current.access_type
                    ):
                        self._report(key, p, q, current)

    def _check_current_as_interleaver(
        self, key: Location, history: _History, current: AccessEntry
    ) -> None:
        """Current access interleaves a previously completed pair."""
        parallel = self._engine.parallel
        for step, others in history.by_step.items():
            if step == current.step or len(others) < 2:
                continue
            if not parallel(current.step, step):
                continue
            for i, p in enumerate(others):
                for r in others[i + 1 :]:
                    if not p.locks_disjoint(r):
                        continue
                    if is_unserializable_triple(
                        p.access_type, current.access_type, r.access_type
                    ):
                        self._report(key, p, current, r)

    def _report(
        self,
        key: Location,
        first: AccessEntry,
        second: AccessEntry,
        third: AccessEntry,
    ) -> None:
        self.report.add(
            AtomicityViolation(
                location=key,
                first=first.info(),
                second=second.info(),
                third=third.info(),
                pattern=triple_code(
                    first.access_type, second.access_type, third.access_type
                ),
                checker=self.checker_name,
            )
        )

    # -- introspection -----------------------------------------------------------

    def history_size(self, location: Location) -> int:
        """Number of stored entries for *location* (metadata-growth metric)."""
        history = self._history.get(location)
        return 0 if history is None else len(history.entries)

    def total_history_entries(self) -> int:
        """Total stored entries across all locations.

        Grows linearly with dynamic accesses -- the quantity the optimized
        checker's 12+2 fixed entries replace (ablation ABL-META).
        """
        return sum(len(history.entries) for history in self._history.values())

    def metrics(self) -> Dict[str, int]:
        """Canonical ``repro.obs`` counters; shard-summable (see the
        optimized checker's ``metrics`` for the invariant)."""
        peak = max(
            (len(history.entries) for history in self._history.values()),
            default=0,
        )
        return {
            "checker.accesses_checked": self._accesses,
            "checker.basic.history_entries": self.total_history_entries(),
            "checker.basic.history_peak": peak,
            "checker.basic.tracked_locations": len(self._history),
            "report.violations": len(self.report),
            "report.raw_findings": self.report.raw_count,
        }
