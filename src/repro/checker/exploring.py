"""Velodrome + interleaving exploration: the paper's strawman combination.

Section 4: "As Velodrome detects atomicity violation in a given schedule,
it has to be combined with an interleaving explorer to detect atomicity
violations possible in other schedules."  This module implements exactly
that combination so the comparison can be *run*, not just argued: record
the trace, enumerate (up to a bound) the legal alternative schedules, and
replay each through a fresh Velodrome instance.

The result demonstrates both halves of the paper's pitch:

* given enough schedules, the combination finds what the optimized
  checker finds from one trace (completeness parity on small programs);
* the cost is multiplied by the number of schedules explored -- the
  quantity `schedules_explored` reports and the ablation benchmark plots
  against the optimized checker's single run.

Because exploration needs the whole trace, this is an offline analysis:
it runs at ``on_run_end`` over the events it recorded.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set

from repro.checker.velodrome import VelodromeChecker
from repro.report import ViolationReport
from repro.runtime.events import (
    AcquireEvent,
    MemoryEvent,
    ReleaseEvent,
)
from repro.runtime.observer import RuntimeObserver
from repro.trace.trace import Trace

Location = Hashable


class ExploringVelodrome(RuntimeObserver):
    """Velodrome replayed over every legal schedule of the observed trace.

    Parameters
    ----------
    max_schedules:
        Exploration bound; ``truncated`` records whether it was hit.
    """

    requires_dpst = True
    checker_name = "velodrome+explorer"

    def __init__(self, max_schedules: int = 2_000) -> None:
        self.max_schedules = max_schedules
        self.report = ViolationReport()
        self.schedules_explored = 0
        self.truncated = False
        self._events: List[object] = []
        self._dpst = None

    # -- recording ----------------------------------------------------------

    def on_run_begin(self, run) -> None:
        self._dpst = run.dpst

    def on_memory(self, event: MemoryEvent) -> None:
        self._events.append(event)

    def on_acquire(self, event: AcquireEvent) -> None:
        self._events.append(event)

    def on_release(self, event: ReleaseEvent) -> None:
        self._events.append(event)

    # -- exploration ------------------------------------------------------------

    def on_run_end(self, run) -> None:
        from repro.trace.explore import InterleavingExplorer

        trace = Trace(list(self._events), dpst=self._dpst)
        explorer = InterleavingExplorer(trace, max_schedules=self.max_schedules)
        for schedule in explorer.schedules():
            self.schedules_explored += 1
            velodrome = VelodromeChecker()
            velodrome.on_run_begin(run)
            for event in schedule:
                velodrome.on_memory(event)
            self.report.extend(velodrome.report)
        self.truncated = explorer.truncated

    # -- queries -----------------------------------------------------------------

    def violation_locations(self) -> Set[Location]:
        """Locations implicated in a cycle in at least one schedule."""
        return set(self.report.locations())
