"""Conflict serializability of three-access interleavings (paper Figure 4).

Setting: accesses ``A1`` and ``A3`` are performed, in that order, by one
step node of one task; ``A2`` is performed by a step node of a different
task that can logically execute in parallel, interleaving between the two.
All three touch the same location.  The trace ``A1 A2 A3`` is conflict
serializable iff it can be reordered into a serial trace (both of the
first task's accesses adjacent) by commuting adjacent non-conflicting
operations.

Two operations *conflict* iff they access the same location from different
tasks and at least one writes.  With only two transactions, the trace is
unserializable iff there is a conflict edge in both directions, i.e. iff
``A1`` conflicts with ``A2`` *and* ``A2`` conflicts with ``A3``.  That
yields exactly the paper's table:

========  ================
pattern   conflict
========  ================
R R R     serializable
R R W     serializable
W R R     serializable
R W R     **unserializable**
R W W     **unserializable**
W R W     **unserializable**
W W R     **unserializable**
W W W     **unserializable**
========  ================

(the same five unserializable shapes as AVIO's interleaving invariants,
plus W-W-W which AVIO treats as a benign update pattern but conflict
serializability rejects).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.report import READ, WRITE
from repro.checker.access import AccessEntry, TwoAccessPattern

#: The eight triples in pattern-code form, mapping to ``True`` when the
#: interleaving is conflict serializable.
_TABLE: Dict[str, bool] = {
    "RRR": True,
    "RRW": True,
    "WRR": True,
    "RWR": False,
    "RWW": False,
    "WRW": False,
    "WWR": False,
    "WWW": False,
}

#: The unserializable pattern codes, sorted.
UNSERIALIZABLE_PATTERNS: Tuple[str, ...] = tuple(
    sorted(code for code, ok in _TABLE.items() if not ok)
)

#: The serializable pattern codes, sorted.
SERIALIZABLE_PATTERNS: Tuple[str, ...] = tuple(
    sorted(code for code, ok in _TABLE.items() if ok)
)


def _letter(access_type: str) -> str:
    return "W" if access_type == WRITE else "R"


def triple_code(a1_type: str, a2_type: str, a3_type: str) -> str:
    """The three-letter pattern code, e.g. ``("read","write","read")`` -> ``"RWR"``."""
    return _letter(a1_type) + _letter(a2_type) + _letter(a3_type)


def is_serializable(a1_type: str, a2_type: str, a3_type: str) -> bool:
    """Is the ``A1 A2 A3`` interleaving conflict serializable? (Fig. 4)"""
    return _TABLE[triple_code(a1_type, a2_type, a3_type)]


def is_unserializable_triple(a1_type: str, a2_type: str, a3_type: str) -> bool:
    """Negation of :func:`is_serializable`, the checker's hot predicate."""
    return not _TABLE[triple_code(a1_type, a2_type, a3_type)]


def pattern_violated_by(pattern: TwoAccessPattern, interleaver: AccessEntry) -> bool:
    """Would *interleaver* between the pattern's accesses be unserializable?

    Only the access *types* are consulted; callers are responsible for the
    structural side conditions (distinct tasks, logical parallelism).
    """
    return is_unserializable_triple(
        pattern.first.access_type,
        interleaver.access_type,
        pattern.second.access_type,
    )


def serializability_table() -> List[Tuple[str, bool]]:
    """The full Figure 4 table as ``(code, serializable)`` rows."""
    return sorted(_TABLE.items())


def brute_force_serializable(
    a1_type: str, a2_type: str, a3_type: str
) -> bool:
    """Reference oracle: decide serializability from first principles.

    Enumerates both serial orders (``A2`` before or after the ``A1 A3``
    block) and checks whether one is reachable from ``A1 A2 A3`` by
    commuting adjacent non-conflicting operations.  With three operations
    this reduces to moving ``A2`` left past ``A1`` or right past ``A3``,
    allowed when the adjacent pair does not conflict.  Used by property
    tests to validate the table.
    """

    def conflicts(x: str, y: str) -> bool:
        return x == WRITE or y == WRITE

    can_move_left = not conflicts(a1_type, a2_type)
    can_move_right = not conflicts(a2_type, a3_type)
    return can_move_left or can_move_right


def all_triples() -> Iterable[Tuple[str, str, str]]:
    """Every (A1, A2, A3) access-type combination."""
    for a1 in (READ, WRITE):
        for a2 in (READ, WRITE):
            for a3 in (READ, WRITE):
                yield (a1, a2, a3)
