"""Atomicity checkers.

Three analyses, all consuming runtime events as
:class:`~repro.runtime.observer.RuntimeObserver` subclasses:

* :class:`~repro.checker.basic.BasicAtomicityChecker` -- the paper's
  Figure 3 algorithm: unbounded per-location access histories, checked on
  every access.  Sound and complete but metadata grows with the number of
  dynamic accesses.
* :class:`~repro.checker.optimized.OptAtomicityChecker` -- the paper's
  contribution (Figures 6-9 plus Section 3.3): twelve fixed global access
  history entries per location plus two per-task local entries, with
  lockset tracking and lock versioning.  Detects atomicity violations that
  can occur in *any* schedule for the given input.
* :class:`~repro.checker.velodrome.VelodromeChecker` -- the reimplemented
  baseline (Flanagan, Freund & Yi, PLDI 2008) at step-node granularity:
  builds the transactional happens-before graph of the *observed trace*
  and reports cycles.  Trace-sensitive by design, which is exactly the
  contrast the paper's Figure 13 draws.
* :class:`~repro.checker.regiontrack.RegionTrackChecker` -- sound *and*
  complete trace-level baseline (RegionTrack, arXiv:2008.04479):
  constant-size per-region summaries instead of full histories; the
  complete anchor of the fuzz oracle's precision sandwich.
* :class:`~repro.checker.streaming.StreamingChecker` -- windowed online
  wrapper: consumes events one at a time (live or from a TraceReader
  stream) and compacts dead metadata every ``window`` events, bounding
  peak memory by the window instead of the trace.
"""

from repro.errors import CheckerError
from repro.runtime.observer import RuntimeObserver

from repro.checker.access import AccessEntry, TwoAccessPattern
from repro.checker.annotations import AtomicAnnotations
from repro.checker.patterns import (
    UNSERIALIZABLE_PATTERNS,
    is_unserializable_triple,
    serializability_table,
)
from repro.checker.basic import BasicAtomicityChecker
from repro.checker.metadata import GlobalSpace, LocalCell, LocalSpace
from repro.checker.optimized import OptAtomicityChecker
from repro.checker.velodrome import VelodromeChecker
from repro.checker.racedetector import RaceDetector, RaceReport
from repro.checker.exploring import ExploringVelodrome
from repro.checker.regiontrack import RegionTrackChecker
from repro.checker.streaming import DEFAULT_WINDOW, StreamingChecker

__all__ = [
    "AccessEntry",
    "TwoAccessPattern",
    "AtomicAnnotations",
    "UNSERIALIZABLE_PATTERNS",
    "is_unserializable_triple",
    "serializability_table",
    "BasicAtomicityChecker",
    "GlobalSpace",
    "LocalCell",
    "LocalSpace",
    "OptAtomicityChecker",
    "VelodromeChecker",
    "RaceDetector",
    "RaceReport",
    "ExploringVelodrome",
    "RegionTrackChecker",
    "StreamingChecker",
    "DEFAULT_WINDOW",
    "CHECKER_FACTORIES",
    "UnknownCheckerError",
    "make_checker",
    "checker_name_of",
]


#: Registry of checker factories addressable by name.
CHECKER_FACTORIES = {
    "basic": BasicAtomicityChecker,
    "optimized": OptAtomicityChecker,
    "velodrome": VelodromeChecker,
    "racedetector": RaceDetector,
    "velodrome+explorer": ExploringVelodrome,
    "regiontrack": RegionTrackChecker,
    "streaming": StreamingChecker,
}


class UnknownCheckerError(CheckerError, ValueError):
    """An unknown checker name, class, or object was requested.

    Subclasses :class:`ValueError` as well so long-standing
    ``except ValueError`` callers of :func:`make_checker` keep working.
    """


def make_checker(checker="optimized", **kwargs):
    """Create a checker from a name, a checker class, or an instance.

    Accepted forms:

    * a registered name -- ``"basic"`` | ``"optimized"`` | ``"velodrome"``
      | ``"racedetector"`` | ``"velodrome+explorer"`` | ``"regiontrack"``
      | ``"streaming"``;
    * a :class:`~repro.runtime.observer.RuntimeObserver` subclass, which is
      instantiated with ``**kwargs``;
    * a pre-built observer instance, returned as-is (``kwargs`` must then
      be empty -- the instance is already configured).

    Anything else raises :class:`UnknownCheckerError` (a
    :class:`~repro.errors.CheckerError`).
    """
    if isinstance(checker, str):
        factory = CHECKER_FACTORIES.get(checker)
        if factory is None:
            raise UnknownCheckerError(
                f"unknown checker {checker!r}; expected one of "
                f"{sorted(CHECKER_FACTORIES)}"
            )
        return factory(**kwargs)
    if isinstance(checker, type) and issubclass(checker, RuntimeObserver):
        return checker(**kwargs)
    if isinstance(checker, RuntimeObserver):
        if kwargs:
            raise UnknownCheckerError(
                f"checker instance {checker!r} cannot take keyword "
                f"arguments {sorted(kwargs)}; configure it at construction"
            )
        return checker
    raise UnknownCheckerError(
        f"cannot build a checker from {checker!r}; pass a registered name, "
        "a RuntimeObserver subclass, or a checker instance"
    )


def checker_name_of(checker) -> str:
    """Best-effort display name for any :func:`make_checker` input."""
    if isinstance(checker, str):
        return checker
    if isinstance(checker, type):
        return getattr(checker, "checker_name", checker.__name__)
    return getattr(checker, "checker_name", type(checker).__name__)
