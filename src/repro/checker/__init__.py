"""Atomicity checkers.

Three analyses, all consuming runtime events as
:class:`~repro.runtime.observer.RuntimeObserver` subclasses:

* :class:`~repro.checker.basic.BasicAtomicityChecker` -- the paper's
  Figure 3 algorithm: unbounded per-location access histories, checked on
  every access.  Sound and complete but metadata grows with the number of
  dynamic accesses.
* :class:`~repro.checker.optimized.OptAtomicityChecker` -- the paper's
  contribution (Figures 6-9 plus Section 3.3): twelve fixed global access
  history entries per location plus two per-task local entries, with
  lockset tracking and lock versioning.  Detects atomicity violations that
  can occur in *any* schedule for the given input.
* :class:`~repro.checker.velodrome.VelodromeChecker` -- the reimplemented
  baseline (Flanagan, Freund & Yi, PLDI 2008) at step-node granularity:
  builds the transactional happens-before graph of the *observed trace*
  and reports cycles.  Trace-sensitive by design, which is exactly the
  contrast the paper's Figure 13 draws.
"""

from repro.checker.access import AccessEntry, TwoAccessPattern
from repro.checker.annotations import AtomicAnnotations
from repro.checker.patterns import (
    UNSERIALIZABLE_PATTERNS,
    is_unserializable_triple,
    serializability_table,
)
from repro.checker.basic import BasicAtomicityChecker
from repro.checker.metadata import GlobalSpace, LocalCell, LocalSpace
from repro.checker.optimized import OptAtomicityChecker
from repro.checker.velodrome import VelodromeChecker
from repro.checker.racedetector import RaceDetector, RaceReport
from repro.checker.exploring import ExploringVelodrome

__all__ = [
    "AccessEntry",
    "TwoAccessPattern",
    "AtomicAnnotations",
    "UNSERIALIZABLE_PATTERNS",
    "is_unserializable_triple",
    "serializability_table",
    "BasicAtomicityChecker",
    "GlobalSpace",
    "LocalCell",
    "LocalSpace",
    "OptAtomicityChecker",
    "VelodromeChecker",
    "RaceDetector",
    "RaceReport",
    "ExploringVelodrome",
]


def make_checker(name: str, **kwargs):
    """Create a checker by name: ``basic`` | ``optimized`` | ``velodrome``
    | ``racedetector`` | ``velodrome+explorer``."""
    factories = {
        "basic": BasicAtomicityChecker,
        "optimized": OptAtomicityChecker,
        "velodrome": VelodromeChecker,
        "racedetector": RaceDetector,
        "velodrome+explorer": ExploringVelodrome,
    }
    if name not in factories:
        raise ValueError(
            f"unknown checker {name!r}; expected one of {sorted(factories)}"
        )
    return factories[name](**kwargs)
