"""The optimized atomicity checker (paper Figures 6-9 and Section 3.3).

Detects atomicity violations that can occur in *any* schedule for the given
input, from a single observed trace, using fixed-size metadata:

* a :class:`~repro.checker.metadata.GlobalSpace` of twelve access-history
  entries per checked location (R1/R2/W1/W2 singles + RR/RW/WR/WW
  two-access patterns), shared by all tasks;
* a :class:`~repro.checker.metadata.LocalSpace` per task holding the first
  read and first write of the current step to each location -- the interim
  buffer that turns a second access into a two-access pattern.

Dispatch follows Figure 6:

1. *first access to the location by any task* -- record the single-access
   pattern globally and the first read/write locally (Figure 7);
2. *first access by the current task (step)* -- the access can only be the
   interleaver ``A2`` of a triple, so check it against the stored
   two-access patterns, then install it into the single slots (Figure 8);
3. *non-first access* -- the access closes a two-access pattern with the
   local first read/write, which can only be the ``A1``/``A3`` pair of a
   triple, so check the candidate pattern against the stored single-access
   entries of parallel steps, then promote it to the global space
   (Figure 9).

Locks (Section 3.3): a candidate pattern is formed only when the versioned
locksets of its two accesses are disjoint -- i.e. the accesses lie in
different critical sections, so a parallel access can interleave between
them.  Lock versioning (fresh name on re-acquisition) is handled by the
runtime; the global space stores no lock information.

Modes
-----
``mode="paper"`` (default) is faithful to the published pseudocode: one
pattern slot per kind, replaced only by in-series candidates, and no
interleaver re-check on non-first accesses.  ``mode="thorough"`` keeps
overflow pattern lists and re-checks interleavers, making the checker
provably equivalent to :class:`~repro.checker.basic.BasicAtomicityChecker`
(property-tested); the difference only matters in rare 4-task topologies
documented in ``tests/test_opt_corner_cases.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.checker.access import EMPTY_LOCKSET, AccessEntry, TwoAccessPattern
from repro.checker.annotations import AtomicAnnotations
from repro.checker.metadata import GlobalSpace, LocalCell, LocalSpace
from repro.checker.patterns import pattern_violated_by, triple_code
from repro.errors import CheckerError
from repro.report import AtomicityViolation, ViolationReport
from repro.runtime.events import MemoryEvent
from repro.runtime.observer import RuntimeObserver

Location = Hashable


class OptAtomicityChecker(RuntimeObserver):
    """Figures 6-9: fixed-size global + local metadata spaces."""

    requires_dpst = True
    location_sharded = True
    checker_name = "optimized"

    def __init__(self, mode: str = "paper") -> None:
        if mode not in ("paper", "thorough"):
            raise ValueError(f"unknown mode {mode!r}; expected 'paper' or 'thorough'")
        self.mode = mode
        self.thorough = mode == "thorough"
        self.report = ViolationReport()
        self._gs: Dict[Location, GlobalSpace] = {}
        self._ls: Dict[int, LocalSpace] = {}
        self._engine = None
        self._annotations: Optional[AtomicAnnotations] = None
        self._annotations_trivial = True
        # Observability counters (plain ints on the hot path; surfaced
        # via metrics() and flushed by the pipeline -- see repro.obs).
        self._accesses = 0
        self._promotions = 0
        self._promotions_blocked = 0
        self._memo_hits = 0
        self._pattern_checks = 0

    # -- observer wiring ----------------------------------------------------

    def on_run_begin(self, run) -> None:
        engine = getattr(run, "engine", None)
        if engine is None or not callable(getattr(engine, "parallel", None)):
            raise CheckerError(
                "OptAtomicityChecker requires a parallelism engine "
                "(any repro.dpst.engines.ParallelismEngine)"
            )
        self._engine = engine
        self._annotations = run.annotations or AtomicAnnotations()
        self._annotations_trivial = self._annotations.trivial

    def on_memory(self, event: MemoryEvent) -> None:
        if self._annotations_trivial:
            key = event.location
        else:
            annotations = self._annotations
            if not annotations.is_checked(event.location):
                return
            key = annotations.metadata_key(event.location)
        self._accesses += 1
        raw_lockset = event.lockset
        entry = AccessEntry(
            event.step,
            event.access_type,
            event.task,
            event.location,
            frozenset(raw_lockset) if raw_lockset else EMPTY_LOCKSET,
        )
        local = self._ls.get(event.task)
        if local is None:
            local = LocalSpace(event.task)
            self._ls[event.task] = local
        cell, had_prior = local.cell_for(key, event.step)
        space = self._gs.get(key)
        if space is None:
            space = GlobalSpace()
            self._gs[key] = space
            self._handle_first_access(space, cell, entry)
        elif not had_prior:
            self._handle_first_access_current_task(key, space, cell, entry)
        else:
            self._handle_non_first_access(key, space, cell, entry)

    # -- Figure 7 -----------------------------------------------------------------

    def _handle_first_access(
        self, space: GlobalSpace, cell: LocalCell, entry: AccessEntry
    ) -> None:
        """Very first access to the location: seed global and local spaces.

        No LCA query is performed here, which is why ``blackscholes``-style
        programs (no repeated accesses per step) issue zero LCA queries in
        Table 1.
        """
        if entry.is_read:
            space.R1 = entry
            cell.read = entry
        else:
            space.W1 = entry
            cell.write = entry
        space.version += 1

    # -- Figure 8 -----------------------------------------------------------------

    def _handle_first_access_current_task(
        self, key: Location, space: GlobalSpace, cell: LocalCell, entry: AccessEntry
    ) -> None:
        """First access by this step: it can only be an interleaver (A2)."""
        parallel = self._engine.parallel
        if entry.is_read:
            cell.read = entry
            # A read interleaver only breaks a write-write pair (W,R,W).
            self._check_patterns_against(key, space, ("WW",), entry)
            space.update_single("R", entry, parallel)
        else:
            cell.write = entry
            # A write interleaver breaks every two-access pattern.
            self._check_patterns_against(key, space, ("WW", "RW", "RR", "WR"), entry)
            space.update_single("W", entry, parallel)

    # -- Figure 9 -----------------------------------------------------------------

    def _handle_non_first_access(
        self, key: Location, space: GlobalSpace, cell: LocalCell, entry: AccessEntry
    ) -> None:
        """Repeated access by this step: it closes two-access patterns (A1/A3).

        The ``cell.ver_*`` stamps skip re-running a check branch when the
        global space has not changed since this step last ran it with the
        same access kind -- the outcome is provably identical (the checks
        depend only on the step, the access types, and the space's
        contents), so this is a pure memoization (see
        :class:`repro.checker.metadata.GlobalSpace`).
        """
        parallel = self._engine.parallel
        if entry.is_read:
            if cell.read is not None:
                if cell.ver_rr == space.version:
                    self._memo_hits += 1
                elif cell.read.locks_disjoint(entry):
                    candidate = TwoAccessPattern(cell.read, entry)  # read-read
                    self._check_candidate_against_singles(
                        key, space, candidate, writes=True, reads=False
                    )
                    self._note_promotion(
                        space.update_pattern("RR", candidate, parallel, self.thorough)
                    )
                    cell.ver_rr = space.version
            if cell.write is not None:
                if cell.ver_wr == space.version:
                    self._memo_hits += 1
                elif cell.write.locks_disjoint(entry):
                    candidate = TwoAccessPattern(cell.write, entry)  # write-read
                    self._check_candidate_against_singles(
                        key, space, candidate, writes=True, reads=False
                    )
                    self._note_promotion(
                        space.update_pattern("WR", candidate, parallel, self.thorough)
                    )
                    cell.ver_wr = space.version
            if cell.ver_sr != space.version:
                space.update_single("R", entry, parallel)
                cell.ver_sr = space.version
            else:
                self._memo_hits += 1
            if cell.read is None:
                cell.read = entry
            if self.thorough:
                self._check_patterns_against(key, space, ("WW",), entry)
        else:
            if cell.read is not None:
                if cell.ver_rw == space.version:
                    self._memo_hits += 1
                elif cell.read.locks_disjoint(entry):
                    candidate = TwoAccessPattern(cell.read, entry)  # read-write
                    self._check_candidate_against_singles(
                        key, space, candidate, writes=True, reads=False
                    )
                    self._note_promotion(
                        space.update_pattern("RW", candidate, parallel, self.thorough)
                    )
                    cell.ver_rw = space.version
            if cell.write is not None:
                if cell.ver_ww == space.version:
                    self._memo_hits += 1
                elif cell.write.locks_disjoint(entry):
                    candidate = TwoAccessPattern(cell.write, entry)  # write-write
                    self._check_candidate_against_singles(
                        key, space, candidate, writes=True, reads=True
                    )
                    self._note_promotion(
                        space.update_pattern("WW", candidate, parallel, self.thorough)
                    )
                    cell.ver_ww = space.version
            if cell.ver_sw != space.version:
                space.update_single("W", entry, parallel)
                cell.ver_sw = space.version
            else:
                self._memo_hits += 1
            if cell.write is None:
                cell.write = entry
            if self.thorough:
                self._check_patterns_against(
                    key, space, ("WW", "RW", "RR", "WR"), entry
                )

    def _note_promotion(self, stored: bool) -> None:
        """Account one candidate's fate: promoted to the global space or
        dropped because a parallel occupant already covers its kind."""
        if stored:
            self._promotions += 1
        else:
            self._promotions_blocked += 1

    # -- triple checks ----------------------------------------------------------------

    def _check_patterns_against(
        self, key: Location, space: GlobalSpace, kinds, interleaver: AccessEntry
    ) -> None:
        """Stored pattern (A1, A3) + current access as interleaver (A2)."""
        parallel = self._engine.parallel
        for kind in kinds:
            for pattern in space.patterns(kind):
                self._pattern_checks += 1
                if pattern.step == interleaver.step:
                    continue
                if not parallel(pattern.step, interleaver.step):
                    continue
                if pattern_violated_by(pattern, interleaver):
                    self._report(key, pattern, interleaver)

    def _check_candidate_against_singles(
        self,
        key: Location,
        space: GlobalSpace,
        candidate: TwoAccessPattern,
        writes: bool,
        reads: bool,
    ) -> None:
        """Candidate pattern (A1, A3) + stored single access as interleaver (A2).

        Only write singles can break RR/WR/RW candidates; WW candidates are
        additionally breakable by read singles (W,R,W) -- the exact checks
        of Figure 9.
        """
        parallel = self._engine.parallel
        step = candidate.step

        def try_single(single: Optional[AccessEntry]) -> None:
            if single is None or single.step == step:
                return
            if not parallel(step, single.step):
                return
            if pattern_violated_by(candidate, single):
                self._report(key, candidate, single)

        if writes:
            try_single(space.W1)
            try_single(space.W2)
        if reads:
            try_single(space.R1)
            try_single(space.R2)

    def _report(
        self, key: Location, pattern: TwoAccessPattern, interleaver: AccessEntry
    ) -> None:
        self.report.add(
            AtomicityViolation(
                location=key,
                first=pattern.first.info(),
                second=interleaver.info(),
                third=pattern.second.info(),
                pattern=triple_code(
                    pattern.first.access_type,
                    interleaver.access_type,
                    pattern.second.access_type,
                ),
                checker=self.checker_name,
            )
        )

    # -- streaming compaction protocol ----------------------------------------------

    def compact(self) -> int:
        """Evict provably dead local metadata; return the number of cells dropped.

        A cell is dead when its step is older than the newest step its task
        has a cell for: step ids strictly increase within a task, so
        :meth:`~repro.checker.metadata.LocalSpace.cell_for` would replace
        such a cell on the task's next touch anyway, and no check path ever
        consults another task's cells.  Compaction therefore never changes
        a verdict -- ``tests/test_streaming_property.py`` pins
        compact-after-every-event ≡ compact-never.  The global spaces are
        *not* touched: future accesses check against them, and they are
        fixed-size per location in ``paper`` mode.

        This method is the compaction protocol
        :class:`repro.checker.streaming.StreamingChecker` requires of its
        inner checker.
        """
        evicted = 0
        emptied = []
        for task_id, local in self._ls.items():
            evicted += local.evict_stale()
            if not local.cell_count():
                emptied.append(task_id)
        for task_id in emptied:
            del self._ls[task_id]
        return evicted

    def release_task(self, task_id: int) -> int:
        """Drop all local metadata of a *finished* task; return cells dropped.

        Safe once the task's end event has been observed: a finished task
        performs no further accesses, so its cells can never be read again.
        Part of the streaming compaction protocol (the wrapper calls this
        for tasks whose ``TaskEndEvent`` fell inside the window).
        """
        local = self._ls.pop(task_id, None)
        if local is None:
            return 0
        return local.cell_count()

    # -- metadata accounting (ablation ABL-META) ------------------------------------

    def total_global_entries(self) -> int:
        """Occupied global entries across all locations."""
        return sum(space.entry_count() for space in self._gs.values())

    def max_entries_per_location(self) -> int:
        """Largest global space; bounded by 12 in ``paper`` mode."""
        if not self._gs:
            return 0
        return max(space.entry_count() for space in self._gs.values())

    def total_local_entries(self) -> int:
        """Occupied local entries across all tasks."""
        return sum(space.entry_count() for space in self._ls.values())

    def tracked_locations(self) -> int:
        """Number of locations with a global space."""
        return len(self._gs)

    # -- observability (repro.obs metric registry) ---------------------------------

    def metrics(self) -> Dict[str, int]:
        """Accumulated counters under the canonical ``repro.obs`` names.

        Every value is a per-location (or per-finding) total, so summing
        the mapping across location-disjoint shards reproduces the
        in-process numbers exactly -- the invariant
        ``tests/test_metrics_sharded.py`` pins across the 36-program
        suite.
        """
        return {
            "checker.accesses_checked": self._accesses,
            "checker.optimized.promotions": self._promotions,
            "checker.optimized.promotions_blocked": self._promotions_blocked,
            "checker.optimized.memo_hits": self._memo_hits,
            "checker.optimized.pattern_checks": self._pattern_checks,
            "checker.optimized.global_entries": self.total_global_entries(),
            "checker.optimized.local_entries": self.total_local_entries(),
            "checker.optimized.tracked_locations": self.tracked_locations(),
            "report.violations": len(self.report),
            "report.raw_findings": self.report.raw_count,
        }
