"""Access-history entries and two-access patterns.

These are the units of the paper's metadata: an :class:`AccessEntry` is one
``<step node, access type>`` record (optionally with the lockset held, per
Section 3.3), and a :class:`TwoAccessPattern` is an ordered pair of entries
performed by the same step node -- the ``A1``/``A3`` of an unserializable
triple.

Both are deliberately plain ``__slots__`` classes rather than dataclasses:
one is allocated per dynamic memory access on the checker's hottest path,
and constructor cost is the third-largest line item in the overhead
profile.  Treat instances as immutable.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Optional, Tuple

from repro.report import READ, WRITE, AccessInfo

Location = Hashable

EMPTY_LOCKSET: FrozenSet[str] = frozenset()


class AccessEntry:
    """One access-history entry.

    The global metadata space conceptually stores only ``(step, type)``;
    the task id, location and lockset ride along for report quality and for
    the local-space lock handling (the paper likewise keeps lock
    information only in the local space -- the global space ignores it).
    """

    __slots__ = ("step", "access_type", "task", "location", "lockset")

    def __init__(
        self,
        step: int,
        access_type: str,
        task: int = -1,
        location: Location = None,
        lockset: FrozenSet[str] = EMPTY_LOCKSET,
    ) -> None:
        self.step = step
        self.access_type = access_type
        self.task = task
        self.location = location
        self.lockset = lockset

    @property
    def is_write(self) -> bool:
        return self.access_type == WRITE

    @property
    def is_read(self) -> bool:
        return self.access_type == READ

    def locks_disjoint(self, other: "AccessEntry") -> bool:
        """No common (versioned) lock: the accesses are in different
        critical sections, so an interleaving access can separate them."""
        mine = self.lockset
        theirs = other.lockset
        if not mine or not theirs:
            return True
        return not (mine & theirs)

    def info(self) -> AccessInfo:
        """Convert to the report-facing :class:`AccessInfo`."""
        return AccessInfo(
            step=self.step,
            access_type=self.access_type,
            location=self.location,
            task=self.task if self.task >= 0 else None,
            lockset=tuple(sorted(self.lockset)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessEntry):
            return NotImplemented
        return (
            self.step == other.step
            and self.access_type == other.access_type
            and self.task == other.task
            and self.location == other.location
            and self.lockset == other.lockset
        )

    def __hash__(self) -> int:
        return hash((self.step, self.access_type, self.task, self.location))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        letter = "W" if self.is_write else "R"
        locks = "{" + ",".join(sorted(self.lockset)) + "}" if self.lockset else ""
        return f"(S{self.step},{letter}{locks})"


class TwoAccessPattern:
    """An ordered pair of accesses performed by the same step node.

    ``kind`` is one of ``"RR"``, ``"RW"``, ``"WR"``, ``"WW"``: the access
    types of ``first`` and ``second`` in program order.
    """

    __slots__ = ("first", "second")

    def __init__(self, first: AccessEntry, second: AccessEntry) -> None:
        self.first = first
        self.second = second

    @property
    def step(self) -> int:
        """The step node that performed both accesses."""
        return self.first.step

    @property
    def kind(self) -> str:
        a = "W" if self.first.is_write else "R"
        b = "W" if self.second.is_write else "R"
        return a + b

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoAccessPattern):
            return NotImplemented
        return self.first == other.first and self.second == other.second

    def __hash__(self) -> int:
        return hash((self.first, self.second))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"[{self.first!r},{self.second!r}]"


def make_pattern(first: AccessEntry, second: AccessEntry) -> TwoAccessPattern:
    """Build a pattern, validating that both entries share one step node."""
    if first.step != second.step:
        raise ValueError(
            f"two-access pattern requires one step node, got {first.step} "
            f"and {second.step}"
        )
    return TwoAccessPattern(first, second)
