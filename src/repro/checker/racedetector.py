"""SPD3-style dynamic data-race detector.

The paper's analysis descends from DPST-based race detection (Raman et
al., PLDI 2012 -- SPD3; Mellor-Crummey 1991; Feng & Leiserson's
Nondeterminator).  This module implements that ancestry: a race detector
over the same DPST and runtime events, reporting pairs of accesses by
logically parallel steps to the same location where at least one writes
and no common lock protects both.

It exists for three reasons:

1. it is the substrate the paper's Section 1 contrasts against -- "a data
   race exists between two parallel tasks if ... at least one of the
   accesses is a write", versus atomicity violations which need a triple;
2. it lets tests demonstrate the paper's separation claims in both
   directions: programs with races but no atomicity violations (single
   accesses per step) and programs with atomicity violations but no races
   (Figure 11's lock-protected variant);
3. it reuses the SPD3 metadata shape the paper cites: per location, one
   writer slot and two reader slots whose steps can execute in parallel
   (the "shadow space" of SPD3), rather than a full access list.

Races are reported as :class:`RaceReport` records on ``races``; the
``report`` attribute stays an (always empty) :class:`ViolationReport` so
the detector composes with harnesses that merge checker reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.checker.access import EMPTY_LOCKSET, AccessEntry
from repro.checker.annotations import AtomicAnnotations
from repro.errors import CheckerError
from repro.report import AccessInfo, ViolationReport
from repro.runtime.events import MemoryEvent
from repro.runtime.observer import RuntimeObserver

Location = Hashable


def _bases(lockset: FrozenSet[str]) -> FrozenSet[str]:
    """Base lock names (version suffixes stripped).

    Mutual exclusion is by base lock: two critical sections of ``L`` can
    never overlap even though versioning gives them distinct names.
    """
    if not lockset:
        return lockset
    return frozenset(name.split("#", 1)[0] for name in lockset)


@dataclass(frozen=True)
class RaceReport:
    """One data race: two parallel, conflicting, unprotected accesses."""

    location: Location
    first: AccessInfo
    second: AccessInfo

    @property
    def key(self) -> Tuple[Location, int, int]:
        low, high = sorted((self.first.step, self.second.step))
        return (self.location, low, high)

    def describe(self) -> str:
        return (
            f"Data race on {self.location!r}: {self.first.describe()} "
            f"vs {self.second.describe()}"
        )


class _RaceCell:
    """SPD3-shaped per-location shadow: one writer, two readers."""

    __slots__ = ("writer", "reader1", "reader2")

    def __init__(self) -> None:
        self.writer: Optional[AccessEntry] = None
        self.reader1: Optional[AccessEntry] = None
        self.reader2: Optional[AccessEntry] = None


class RaceDetector(RuntimeObserver):
    """DPST-based race detection with SPD3-style fixed shadow cells."""

    requires_dpst = True
    location_sharded = True
    checker_name = "racedetector"

    def __init__(self) -> None:
        #: Kept for harness compatibility; races are not atomicity
        #: violations, so this stays empty.
        self.report = ViolationReport()
        self.races: List[RaceReport] = []
        self._seen: set = set()
        self._cells: Dict[Location, _RaceCell] = {}
        self._engine = None
        self._annotations: Optional[AtomicAnnotations] = None
        self._annotations_trivial = True
        #: Accesses analyzed (observability counter; see repro.obs).
        self._accesses = 0

    # -- observer wiring ----------------------------------------------------

    def on_run_begin(self, run) -> None:
        engine = getattr(run, "engine", None)
        if engine is None or not callable(getattr(engine, "parallel", None)):
            raise CheckerError(
                "RaceDetector requires a parallelism engine "
                "(any repro.dpst.engines.ParallelismEngine)"
            )
        self._engine = engine
        self._annotations = run.annotations or AtomicAnnotations()
        self._annotations_trivial = self._annotations.trivial

    def on_memory(self, event: MemoryEvent) -> None:
        if self._annotations_trivial:
            key = event.location
        else:
            annotations = self._annotations
            if not annotations.is_checked(event.location):
                return
            key = annotations.metadata_key(event.location)
        self._accesses += 1
        raw_lockset = event.lockset
        entry = AccessEntry(
            event.step,
            event.access_type,
            event.task,
            event.location,
            frozenset(raw_lockset) if raw_lockset else EMPTY_LOCKSET,
        )
        cell = self._cells.get(key)
        if cell is None:
            cell = _RaceCell()
            self._cells[key] = cell
        if entry.is_read:
            self._on_read(key, cell, entry)
        else:
            self._on_write(key, cell, entry)

    # -- SPD3 logic ------------------------------------------------------------

    def _racy(self, a: AccessEntry, b: AccessEntry) -> bool:
        """Parallel, conflicting, and not commonly locked."""
        if a.step == b.step:
            return False
        if not self._engine.parallel(a.step, b.step):
            return False
        if _bases(a.lockset) & _bases(b.lockset):
            return False  # a common base lock orders the accesses
        return True

    def _on_read(self, key: Location, cell: _RaceCell, entry: AccessEntry) -> None:
        writer = cell.writer
        if writer is not None and self._racy(writer, entry):
            self._record(key, writer, entry)
        # Maintain up to two parallel readers (SPD3's reader pair); keep
        # the slot if its occupant is parallel with the newcomer.
        if cell.reader1 is None or not self._engine.parallel(
            cell.reader1.step, entry.step
        ):
            cell.reader1 = entry
        elif cell.reader2 is None or not self._engine.parallel(
            cell.reader2.step, entry.step
        ):
            cell.reader2 = entry

    def _on_write(self, key: Location, cell: _RaceCell, entry: AccessEntry) -> None:
        writer = cell.writer
        if writer is not None and self._racy(writer, entry):
            self._record(key, writer, entry)
        for reader in (cell.reader1, cell.reader2):
            if reader is not None and self._racy(reader, entry):
                self._record(key, reader, entry)
        # Keep the existing writer if it runs in parallel with the new
        # one (it can still race with future accesses the new writer is
        # ordered with); otherwise the new write supersedes it.
        if writer is None or not self._engine.parallel(writer.step, entry.step):
            cell.writer = entry

    def _record(self, key: Location, a: AccessEntry, b: AccessEntry) -> None:
        race = RaceReport(location=key, first=a.info(), second=b.info())
        if race.key in self._seen:
            return
        self._seen.add(race.key)
        self.races.append(race)

    # -- queries -----------------------------------------------------------------

    def race_locations(self) -> List[Location]:
        """Distinct locations with at least one race, in first-seen order."""
        seen: Dict[Location, None] = {}
        for race in self.races:
            seen.setdefault(race.location)
        return list(seen)

    def describe(self) -> str:
        if not self.races:
            return "no data races"
        lines = [f"{len(self.races)} data race(s):"]
        lines += [race.describe() for race in self.races]
        return "\n".join(lines)

    def metrics(self) -> Dict[str, int]:
        """Canonical ``repro.obs`` counters; shard-summable because races
        are detected and deduplicated per location."""
        return {
            "checker.accesses_checked": self._accesses,
            "checker.racedetector.races": len(self.races),
            "report.violations": len(self.report),
            "report.raw_findings": self.report.raw_count,
        }
