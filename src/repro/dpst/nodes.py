"""Node kinds and identifiers for the DPST.

Nodes are referred to by dense integer ids (their insertion order), which
lets both DPST layouts share one id space and makes ids directly usable as
array indices in :class:`repro.dpst.array.ArrayDPST`.
"""

from __future__ import annotations

import enum

#: The id of the root finish node.  Every DPST is created with this node.
ROOT_ID = 0

#: Sentinel parent id of the root node.
NULL_ID = -1


class NodeKind(enum.IntEnum):
    """The three DPST node kinds.

    ``IntEnum`` so that the array layout can store kinds in a flat integer
    list without boxing.
    """

    STEP = 0
    ASYNC = 1
    FINISH = 2

    @property
    def is_internal(self) -> bool:
        """Async and finish nodes are the only legal internal nodes."""
        return self is not NodeKind.STEP

    def short(self) -> str:
        """One-letter code used in compact tree dumps (S/A/F)."""
        return {NodeKind.STEP: "S", NodeKind.ASYNC: "A", NodeKind.FINISH: "F"}[self]
