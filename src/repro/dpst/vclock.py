"""Vector-clock parallelism engine (the linear-time lineage).

Mathur & Viswanathan ("Atomicity Checking in Linear Time using Vector
Clocks", ASPLOS 2020) observe that the series-parallel questions a
dynamic checker asks can be answered from per-task vector clocks
maintained incrementally over spawn and finish events -- a *linear*
total number of clock operations, against the per-query tree walks of
the LCA engine.  :class:`VectorClockEngine` implements that idea over
the same DPST every other engine queries, so it is a drop-in
registry-backed replacement (``run_program(..., parallel_engine="vc")``).

How clocks are derived from the tree
------------------------------------
The DPST is a complete record of the serial elision: children of a scope
node appear left-to-right in the program order of the owning task.  The
engine replays that order with one mutable clock ("cursor") per task:

* the root task starts with ``{root: 1}``;
* a **step** child snapshots the owner's cursor, then the owner bumps
  its own epoch (every step gets a distinct epoch);
* an **async** child ``A`` snapshots ``cursor ∪ {A: 1}`` -- the spawned
  task's fresh clock -- and the owner bumps its epoch.  ``A``'s subtree
  is *not* visited: it is processed lazily, from its own cursor, if and
  when one of its nodes is queried;
* a **finish** child shares the owner's cursor while open.  When the
  replay must move past it (a right sibling is queried), the subtree is
  finalized and the final clocks of its direct async children are
  joined (pointwise max) into the owner's cursor -- exactly the
  happens-before edge a finish scope creates.

``a`` happens before ``b`` iff ``clock(b)[locus(a)] >= clock(a)[locus(a)]``
where ``locus(a)`` is the task that executed ``a`` (the nearest async
ancestor, or the root).  ``parallel`` is "neither direction".  Scope
*entry* nodes (finish/async) can share a snapshot with their first step
-- indistinguishable to clocks alone -- so mutually-ordered pairs fall
back to one structural :func:`repro.dpst.relation.left_of` walk; step
pairs, the checkers' hot path, never tie.

Laziness keeps the promise honest: every node is processed exactly once
(snapshot + at most one join contribution), so the total clock work is
linear in the tree size times the clock width, regardless of how many
queries are issued.  Queries after processing are two dictionary
lookups.

Supported growth: trees built by the runtime (or replayed traces),
where a finish subtree is complete before any right sibling exists --
the invariant the executors guarantee.  Static trees (built fully, then
queried) are always fine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dpst import relation
from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind, NULL_ID, ROOT_ID
from repro.dpst.stats import EngineStats

Clock = Dict[int, int]


class VectorClockEngine:
    """Parallelism queries answered from incrementally maintained clocks.

    Same construction surface and statistics as every registered engine;
    ``hops`` counts clock entries touched by snapshots and joins (the
    linear maintenance work), plus the two lookups per unique query.
    """

    engine_name = "vc"

    def __init__(self, tree: DPSTBase, cache: bool = True) -> None:
        self.tree = tree
        self.cache_enabled = cache
        self.stats = EngineStats()
        #: node -> frozen clock snapshot (never mutated after assignment).
        self._clocks: Dict[int, Clock] = {ROOT_ID: {ROOT_ID: 1}}
        #: scope node -> [next_child_index, mutable cursor clock].  Finish
        #: scopes share the cursor *dict* with their owning task's scope.
        self._cursors: Dict[int, List] = {ROOT_ID: [0, {ROOT_ID: 1}]}
        #: parent -> children in rank order (built by the id-order scan).
        self._children: Dict[int, List[int]] = {}
        #: node -> owning task (itself for asyncs and the root).
        self._locus: Dict[int, int] = {ROOT_ID: ROOT_ID}
        self._scanned = 1  # node ids folded into the child/locus index
        self._finalized: set = set()  # scopes whose replay is complete
        self._seen_pairs: Dict[Tuple[int, int], bool] = {}

    # -- engine surface ----------------------------------------------------

    def parallel(self, a: int, b: int) -> bool:
        """May nodes *a* and *b* logically execute in parallel?"""
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        self.stats.queries += 1
        if self.cache_enabled:
            cached = self._seen_pairs.get(key)
            if cached is not None:
                return cached
            self.stats.unique += 1
            verdict = self._parallel_uncached(a, b)
            self._seen_pairs[key] = verdict
            return verdict
        if key not in self._seen_pairs:
            self.stats.unique += 1
            self._seen_pairs[key] = True  # presence marker only
        return self._parallel_uncached(a, b)

    def series(self, a: int, b: int) -> bool:
        """``True`` iff *a* and *b* are distinct and cannot run in parallel."""
        return a != b and not self.parallel(a, b)

    def precedes(self, a: int, b: int) -> bool:
        """``True`` iff *a* must complete before *b* starts."""
        if a == b or self.parallel(a, b):
            return False
        a_before, b_before = self._directions(a, b)
        if a_before and b_before:
            # Identical snapshots: a scope-entry chain (finish/async entry
            # and its first step share a clock).  One structural walk
            # breaks the tie; step pairs never reach this.
            return relation.left_of(self.tree, a, b)
        return a_before

    def reset_stats(self) -> None:
        """Zero the counters (clocks and the verdict memo are kept)."""
        self.stats = EngineStats()

    # -- verdict core ------------------------------------------------------

    def _parallel_uncached(self, a: int, b: int) -> bool:
        a_before, b_before = self._directions(a, b)
        return not (a_before or b_before)

    def _directions(self, a: int, b: int) -> Tuple[bool, bool]:
        """(a happens-before-or-ties b, b happens-before-or-ties a)."""
        clock_a = self._clock(a)
        clock_b = self._clock(b)
        self.stats.hops += 2
        locus_a = self._locus[a]
        locus_b = self._locus[b]
        return (
            clock_b.get(locus_a, 0) >= clock_a[locus_a],
            clock_a.get(locus_b, 0) >= clock_b[locus_b],
        )

    # -- clock maintenance -------------------------------------------------

    def _scan(self) -> None:
        """Fold newly created nodes into the child lists and locus map."""
        tree = self.tree
        size = len(tree)
        children = self._children
        locus = self._locus
        while self._scanned < size:
            node = self._scanned
            parent = tree.parent(node)
            children.setdefault(parent, []).append(node)
            if tree.kind(node) is NodeKind.ASYNC:
                locus[node] = node
            else:
                locus[node] = locus[parent]
            self._scanned += 1

    def _clock(self, node: int) -> Clock:
        """The (cached) clock snapshot of *node*."""
        got = self._clocks.get(node)
        if got is not None:
            return got
        self._scan()
        # Descend from the deepest already-clocked ancestor.
        path: List[int] = []
        current = node
        while current not in self._clocks:
            path.append(current)
            current = self.tree.parent(current)
        for current in reversed(path):
            self._visit(current)
        return self._clocks[node]

    def _visit(self, node: int) -> None:
        """Assign *node*'s snapshot by replaying its scope up to its rank."""
        if node in self._clocks:
            return
        tree = self.tree
        parent = tree.parent(node)
        rank = tree.sibling_rank(node)
        self._advance(parent, rank)
        cursor = self._cursors[parent]
        clock = cursor[1]
        kind = tree.kind(node)
        self.stats.hops += len(clock)
        if kind is NodeKind.STEP:
            self._clocks[node] = dict(clock)
            owner = self._locus[node]
            clock[owner] = clock.get(owner, 0) + 1
            cursor[0] = rank + 1
        elif kind is NodeKind.ASYNC:
            snapshot = dict(clock)
            snapshot[node] = 1
            self._clocks[node] = snapshot
            self._cursors[node] = [0, dict(snapshot)]
            owner = self._locus[parent]
            clock[owner] = clock.get(owner, 0) + 1
            cursor[0] = rank + 1
        else:  # FINISH: enter without closing; the cursor dict is shared.
            self._clocks[node] = dict(clock)
            self._cursors[node] = [0, clock]
            # cursor[0] stays at `rank`: the scope is open until a right
            # sibling forces the close (see _advance).

    def _advance(self, scope: int, upto_rank: int) -> None:
        """Replay *scope*'s children with rank < *upto_rank* (closing
        any finish child that must be passed)."""
        cursor = self._cursors[scope]
        children = self._children.get(scope, ())
        tree = self.tree
        while cursor[0] < upto_rank:
            child = children[cursor[0]]
            kind = tree.kind(child)
            if kind is NodeKind.FINISH:
                self._visit(child)  # enter (idempotent)
                self._finalize(child)
                self._join_finish(child, cursor[1])
                cursor[0] += 1
            else:
                self._visit(child)  # steps/asyncs advance the index

    def _finalize(self, scope: int) -> None:
        """Fully replay *scope*'s (complete) subtree, iteratively.

        An explicit work stack stands in for recursion so deeply nested
        programs do not hit the interpreter's recursion limit.
        """
        stack = [scope]
        tree = self.tree
        while stack:
            current = stack[-1]
            cursor = self._cursors[current]
            children = self._children.get(current, ())
            blocked = False
            while cursor[0] < len(children):
                child = children[cursor[0]]
                kind = tree.kind(child)
                if kind is not NodeKind.FINISH:
                    self._visit(child)
                    continue
                self._visit(child)  # enter the nested finish
                if self._finish_pending(child):
                    stack.append(child)
                    blocked = True
                    break
                self._join_finish(child, cursor[1])
                cursor[0] += 1
            if blocked:
                continue
            # All direct children replayed; async children still need
            # their own subtrees finalized before a parent can join them.
            pending = [
                child
                for child in children
                if tree.kind(child) is NodeKind.ASYNC
                and self._scope_pending(child)
            ]
            if pending:
                stack.extend(pending)
                continue
            self._finalized.add(current)
            stack.pop()

    def _finish_pending(self, finish: int) -> bool:
        """Does closing *finish* still require subtree work?"""
        return self._scope_pending(finish)

    def _scope_pending(self, scope: int) -> bool:
        """``True`` while *scope*'s replay (or a descendant's) is unfinished."""
        if scope in self._finalized:
            return False
        tree = self.tree
        stack = [scope]
        visited = []
        while stack:
            current = stack.pop()
            if current in self._finalized:
                continue
            cursor = self._cursors.get(current)
            children = self._children.get(current, ())
            if cursor is None or cursor[0] < len(children):
                return True
            visited.append(current)
            for child in children:
                if tree.kind(child) is not NodeKind.STEP:
                    stack.append(child)
        self._finalized.update(visited)
        return False

    def _join_finish(self, finish: int, clock: Clock) -> None:
        """Join the final clocks of the async tasks *finish* waits for.

        A finish waits for its entire subtree, so the join covers the
        *async closure*: direct async children, plus asyncs they spawned
        with no intervening finish (those under a nested finish were
        already folded into the shared cursor chain when it closed).
        """
        tree = self.tree
        stack = [
            child
            for child in self._children.get(finish, ())
            if tree.kind(child) is NodeKind.ASYNC
        ]
        while stack:
            task = stack.pop()
            final = self._cursors[task][1]
            self.stats.hops += len(final)
            for key, epoch in final.items():
                if epoch > clock.get(key, 0):
                    clock[key] = epoch
            for child in self._children.get(task, ()):
                if tree.kind(child) is NodeKind.ASYNC:
                    stack.append(child)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<VectorClockEngine clocked={len(self._clocks)} "
            f"queries={self.stats.queries}>"
        )
