"""Pointer-based DPST (the paper's Figure 14 baseline).

Each node is a small Python object holding a reference to its parent and a
list of children.  This is the "textbook" representation: simple, but every
hop of an LCA walk chases a pointer to a separately allocated object, which
on the paper's C++ prototype (and, in miniature, on CPython) costs locality
and allocation time compared to the array overlay of
:class:`repro.dpst.array.ArrayDPST`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind, NULL_ID, ROOT_ID


class _Node:
    """One linked DPST node.

    ``__slots__`` keeps the per-node footprint down; the point of this class
    is to model a *linked* layout, not to be gratuitously slow.
    """

    __slots__ = ("node_id", "kind", "parent", "children", "depth", "rank")

    def __init__(
        self,
        node_id: int,
        kind: NodeKind,
        parent: Optional["_Node"],
    ) -> None:
        self.node_id = node_id
        self.kind = kind
        self.parent = parent
        self.children: List[_Node] = []
        if parent is None:
            self.depth = 0
            self.rank = 0
        else:
            self.depth = parent.depth + 1
            self.rank = len(parent.children)
            parent.children.append(self)


class LinkedDPST(DPSTBase):
    """DPST stored as linked node objects."""

    layout_name = "linked"

    def __init__(self) -> None:
        root = _Node(ROOT_ID, NodeKind.FINISH, None)
        #: id -> node table, needed because the public interface speaks in
        #: integer ids.  The *traversals* still go through object pointers.
        self._by_id: List[_Node] = [root]

    # -- construction ------------------------------------------------------

    def add_node(self, parent: int, kind: NodeKind) -> int:
        self._check_parent(parent, len(self._by_id))
        node_id = len(self._by_id)
        node = _Node(node_id, kind, self._by_id[parent])
        self._by_id.append(node)
        return node_id

    # -- accessors -----------------------------------------------------------

    def kind(self, node: int) -> NodeKind:
        return self._by_id[node].kind

    def parent(self, node: int) -> int:
        parent = self._by_id[node].parent
        return NULL_ID if parent is None else parent.node_id

    def depth(self, node: int) -> int:
        return self._by_id[node].depth

    def sibling_rank(self, node: int) -> int:
        return self._by_id[node].rank

    def children(self, node: int) -> List[int]:
        return [child.node_id for child in self._by_id[node].children]

    def __len__(self) -> int:
        return len(self._by_id)

    # -- layout-specific query ------------------------------------------------

    def lca_with_children(self, a: int, b: int) -> tuple:
        """Pointer-chasing LCA returning ``(lca, child_toward_a, child_toward_b)``.

        ``child_toward_x`` is the id of the immediate child of the LCA lying
        on the path to ``x``, or the LCA itself when ``x`` *is* the LCA.
        This is the hot query the Figure 14 ablation measures: here it walks
        node objects, in :class:`ArrayDPST` it walks flat integer arrays.
        """
        node_a = self._by_id[a]
        node_b = self._by_id[b]
        child_a: Optional[_Node] = None
        child_b: Optional[_Node] = None
        while node_a.depth > node_b.depth:
            child_a = node_a
            node_a = node_a.parent  # type: ignore[assignment]
        while node_b.depth > node_a.depth:
            child_b = node_b
            node_b = node_b.parent  # type: ignore[assignment]
        while node_a is not node_b:
            child_a = node_a
            child_b = node_b
            node_a = node_a.parent  # type: ignore[assignment]
            node_b = node_b.parent  # type: ignore[assignment]
        lca_id = node_a.node_id
        toward_a = lca_id if child_a is None else child_a.node_id
        toward_b = lca_id if child_b is None else child_b.node_id
        return lca_id, toward_a, toward_b
