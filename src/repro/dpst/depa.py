"""DePa-style graded dag-path labels: O(1) parallelism queries.

Westrick, Wang & Acar ("DePa: Simple, Provably Efficient, and Practical
Order Maintenance for Task Parallelism", arXiv:2204.14168) label every
vertex of a fork-join dag with its *dag path* -- the sequence of child
choices from the root, one graded field per level -- packed into machine
integers.  Two labels answer the series/parallel question with a couple
of word operations: find the first level where the paths diverge and
look at the left branch's fork bit.  No tree walk, no clock join.

:class:`DePaEngine` adapts the idea to the DPST.  A node's label packs,
for each ancestor level, the field ``(sibling_rank << 1) | is_async``
into a fixed ``W``-bit slot, most significant slot nearest the root::

    code(child) = (code(parent) << W) | field(child)

Queries then reduce to integer arithmetic (all constant-time word
operations on CPython's big ints, with no per-level Python loop):

* truncate the deeper code to the shallower depth (one shift);
* equal codes mean ancestor/descendant -- series, ancestor first;
* otherwise ``xor`` exposes the first divergence from the root
  (``bit_length``), the two ``W``-bit fields there belong to distinct
  children of the LCA, and the SPD3 rule reads directly off them:
  **parallel iff the lower-ranked (left) field has its async bit set**,
  else the left side precedes.

Grading: ``W`` is uniform and grows when a sibling rank overflows it
(doubling, so rebuilds amortize away).  Growth re-seeds the label cache;
the verdict memo survives because verdicts are width-independent.
Labels are materialized lazily by walking up to the nearest labelled
ancestor, so total labelling work is one visit per node -- ``hops``
counts those visits, and a query over already-labelled nodes costs zero
hops, which is exactly the O(1) claim the benchmarks measure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind, ROOT_ID
from repro.dpst.stats import EngineStats


class DePaEngine:
    """Parallelism queries on packed dag-path labels.

    Same construction surface and statistics as every registered engine.
    ``hops`` counts label materializations (amortized-linear build work);
    queries over cached labels add none.
    """

    engine_name = "depa"

    #: Smallest field width: one rank bit plus the async flag.
    _MIN_WIDTH = 2

    def __init__(self, tree: DPSTBase, cache: bool = True) -> None:
        self.tree = tree
        self.cache_enabled = cache
        self.stats = EngineStats()
        self._width = self._MIN_WIDTH
        self._codes: Dict[int, int] = {ROOT_ID: 0}
        self._seen_pairs: Dict[Tuple[int, int], bool] = {}

    # -- engine surface ----------------------------------------------------

    def parallel(self, a: int, b: int) -> bool:
        """May nodes *a* and *b* logically execute in parallel?"""
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        self.stats.queries += 1
        if self.cache_enabled:
            cached = self._seen_pairs.get(key)
            if cached is not None:
                return cached
            self.stats.unique += 1
            verdict = self._parallel_uncached(a, b)
            self._seen_pairs[key] = verdict
            return verdict
        if key not in self._seen_pairs:
            self.stats.unique += 1
            self._seen_pairs[key] = True  # presence marker only
        return self._parallel_uncached(a, b)

    def series(self, a: int, b: int) -> bool:
        """``True`` iff *a* and *b* are distinct and cannot run in parallel."""
        return a != b and not self.parallel(a, b)

    def precedes(self, a: int, b: int) -> bool:
        """``True`` iff *a* must complete before *b* starts."""
        if a == b or self.parallel(a, b):
            return False
        # Ordered; direction from the codes.
        code_a, code_b, depth_a, depth_b = self._aligned(a, b)
        if code_a == code_b:
            return depth_a < depth_b  # the ancestor precedes
        field_a, field_b = self._divergence(code_a, code_b)
        return (field_a >> 1) < (field_b >> 1)

    def reset_stats(self) -> None:
        """Zero the counters (labels and the verdict memo are kept)."""
        self.stats = EngineStats()

    # -- verdict core ------------------------------------------------------

    def _parallel_uncached(self, a: int, b: int) -> bool:
        code_a, code_b, _, _ = self._aligned(a, b)
        if code_a == code_b:
            return False  # ancestor/descendant: series
        field_a, field_b = self._divergence(code_a, code_b)
        left = field_a if field_a < field_b else field_b
        return bool(left & 1)

    def _aligned(self, a: int, b: int) -> Tuple[int, int, int, int]:
        """Both codes truncated to the shallower node's depth."""
        while True:
            # Materializing b's label can overflow the grading and re-seed
            # the cache, leaving the already-fetched code_a in the *old*
            # grading; retry until both codes share one width.
            width = self._width
            code_a = self._code(a)
            code_b = self._code(b)
            if self._width == width:
                break
        tree = self.tree
        depth_a = tree.depth(a)
        depth_b = tree.depth(b)
        if depth_a < depth_b:
            code_b >>= (depth_b - depth_a) * width
        elif depth_b < depth_a:
            code_a >>= (depth_a - depth_b) * width
        return code_a, code_b, depth_a, depth_b

    def _divergence(self, code_a: int, code_b: int) -> Tuple[int, int]:
        """The two fields at the first level (from the root) where the
        aligned codes differ -- children of the LCA, so distinct ranks."""
        width = self._width
        diff = code_a ^ code_b
        shift = ((diff.bit_length() - 1) // width) * width
        mask = (1 << width) - 1
        return (code_a >> shift) & mask, (code_b >> shift) & mask

    # -- label maintenance -------------------------------------------------

    def _code(self, node: int) -> int:
        """The (cached) packed dag-path label of *node*."""
        code = self._codes.get(node)
        if code is not None:
            return code
        path = self._collect(node)
        max_rank = 0
        tree = self.tree
        for pending in path:
            rank = tree.sibling_rank(pending)
            if rank > max_rank:
                max_rank = rank
        needed = max(self._MIN_WIDTH, max_rank.bit_length() + 1)
        if needed > self._width:
            # Grow geometrically and re-seed: every cached label used the
            # old grading.  Verdicts already memoized stay valid.
            self._width = max(needed, self._width * 2)
            self._codes = {ROOT_ID: 0}
            path = self._collect(node)
        width = self._width
        code = self._codes[tree.parent(path[-1])] if path else self._codes[node]
        for pending in reversed(path):
            rank = tree.sibling_rank(pending)
            flag = 1 if tree.kind(pending) is NodeKind.ASYNC else 0
            code = (code << width) | (rank << 1) | flag
            self._codes[pending] = code
            self.stats.hops += 1
        return code

    def _collect(self, node: int) -> List[int]:
        """*node* and its unlabelled ancestors, deepest first."""
        path: List[int] = []
        codes = self._codes
        parent = self.tree.parent
        current = node
        while current not in codes:
            path.append(current)
            current = parent(current)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<DePaEngine width={self._width} labelled={len(self._codes)} "
            f"queries={self.stats.queries}>"
        )
