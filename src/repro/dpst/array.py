"""Array-overlay DPST (the paper's optimized layout).

Instead of separately allocated node objects, the whole tree lives in a few
parallel flat lists indexed by node id: kind, parent index, depth, and
sibling rank.  Insertion is an append to each list; an LCA walk is pure
integer indexing with no pointer indirection and no per-node allocation.
This mirrors the paper's "DPST overlaid in a linear array of nodes, each
node maintains an index to the parent" optimization, which Figure 14 shows
reduces checking overhead from 5.1x to 4.2x on their C++ prototype.
"""

from __future__ import annotations

from typing import List

from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind, NULL_ID, ROOT_ID


class ArrayDPST(DPSTBase):
    """DPST stored as parallel flat arrays."""

    layout_name = "array"

    def __init__(self) -> None:
        # Root finish node occupies index 0 of every array.  Kinds are
        # stored as the NodeKind members themselves: in CPython a list of
        # enum references costs the same as a list of ints, and it avoids
        # a by-value enum lookup on every kind() call.
        self._kinds: List[NodeKind] = [NodeKind.FINISH]
        self._parents: List[int] = [NULL_ID]
        self._depths: List[int] = [0]
        self._ranks: List[int] = [0]
        #: Number of children per node; gives O(1) sibling-rank assignment.
        self._child_counts: List[int] = [0]

    # -- construction ------------------------------------------------------

    def add_node(self, parent: int, kind: NodeKind) -> int:
        self._check_parent(parent, len(self._kinds))
        node_id = len(self._kinds)
        self._kinds.append(kind)
        self._parents.append(parent)
        self._depths.append(self._depths[parent] + 1)
        self._ranks.append(self._child_counts[parent])
        self._child_counts[parent] += 1
        self._child_counts.append(0)
        return node_id

    # -- accessors -----------------------------------------------------------

    def kind(self, node: int) -> NodeKind:
        return self._kinds[node]

    def parent(self, node: int) -> int:
        return self._parents[node]

    def depth(self, node: int) -> int:
        return self._depths[node]

    def sibling_rank(self, node: int) -> int:
        return self._ranks[node]

    def __len__(self) -> int:
        return len(self._kinds)

    # -- layout-specific query ------------------------------------------------

    def lca_with_children(self, a: int, b: int) -> tuple:
        """Index-walking LCA returning ``(lca, child_toward_a, child_toward_b)``.

        Same contract as :meth:`LinkedDPST.lca_with_children`, but the walk
        touches only the flat ``_parents``/``_depths`` integer lists.
        """
        parents = self._parents
        depths = self._depths
        child_a = -1
        child_b = -1
        depth_a = depths[a]
        depth_b = depths[b]
        while depth_a > depth_b:
            child_a = a
            a = parents[a]
            depth_a -= 1
        while depth_b > depth_a:
            child_b = b
            b = parents[b]
            depth_b -= 1
        while a != b:
            child_a = a
            child_b = b
            a = parents[a]
            b = parents[b]
        toward_a = a if child_a == -1 else child_a
        toward_b = a if child_b == -1 else child_b
        return a, toward_a, toward_b
