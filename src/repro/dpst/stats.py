"""Unified statistics of a parallelism-query engine.

Every registered engine (see :mod:`repro.dpst.engines`) answers the same
``parallel(a, b)`` queries and accounts for them with the same three
counters, which produce Table 1's columns and feed the observability
layer's ``engine.*`` metrics (:mod:`repro.obs`).  One exported dataclass
keeps all the surfaces field-for-field identical; ``LCAStats`` remains as
a backwards-compatible alias in :mod:`repro.dpst.lca`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class EngineStats:
    """Counters shared by every parallelism engine.

    ``queries`` counts every parallelism query issued by a client;
    ``unique`` counts the distinct unordered node pairs among them (i.e.
    cache misses when the cache is enabled); ``hops`` measures the raw
    traversal work -- parent hops for tree walks, label entries compared
    for label engines (the locality cost Figure 14 measures).
    """

    queries: int = 0
    unique: int = 0
    hops: int = 0

    @property
    def hits(self) -> int:
        """Number of queries answered from the cache."""
        return self.queries - self.unique

    @property
    def unique_fraction(self) -> float:
        """Fraction of queries that were unique (Table 1's last column)."""
        if self.queries == 0:
            return 0.0
        return self.unique / self.queries

    def merge(self, other: "EngineStats") -> None:
        """Accumulate *other* into this stats object."""
        self.queries += other.queries
        self.unique += other.unique
        self.hops += other.hops

    def as_metrics(self, engine_name: Optional[str] = None) -> Dict[str, int]:
        """The canonical ``engine.*`` metric mapping (see repro.obs).

        With *engine_name* the aggregate counters are accompanied by
        per-engine ``engine.<name>.*`` entries, so snapshots mixing
        engines stay distinguishable (``repro stats`` renders both).
        """
        out = {
            "engine.queries": self.queries,
            "engine.unique": self.unique,
            "engine.hops": self.hops,
        }
        if engine_name:
            out[f"engine.{engine_name}.queries"] = self.queries
            out[f"engine.{engine_name}.unique"] = self.unique
            out[f"engine.{engine_name}.hops"] = self.hops
        return out
