"""Cached least-common-ancestor engine with query statistics.

The checker performs a ``parallel(S_i, S_j)`` query on almost every
non-first memory access, and the same step pairs recur constantly (a step
performs many accesses).  The paper therefore caches LCA queries; Table 1
reports, per benchmark, the total number of LCA queries and the percentage
that were *unique* -- benchmarks with a high unique fraction (kmeans,
raycast) benefit little from the cache and show the highest overheads.

:class:`LCAEngine` wraps a DPST with exactly that: a memo table from
(unordered) step pairs to the parallelism verdict, plus counters that
produce Table 1's columns.  Caching is safe because the DPST only grows and
a node's path to the root never changes, so a computed verdict for a pair
of existing nodes is stable for the rest of the execution.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind
from repro.dpst import relation
from repro.dpst.stats import EngineStats

#: Backwards-compatible alias: the counters were unified across engines
#: as :class:`repro.dpst.stats.EngineStats`.
LCAStats = EngineStats


class LCAEngine:
    """Parallelism queries over a DPST, memoized per unordered step pair.

    Parameters
    ----------
    tree:
        The DPST to query.  The engine holds a reference, not a copy; it is
        expected to be queried while the tree grows.
    cache:
        When ``False`` every query performs the full tree walk.  Used by the
        LCA-cache ablation benchmark.
    """

    engine_name = "lca"

    def __init__(self, tree: DPSTBase, cache: bool = True) -> None:
        self.tree = tree
        self.cache_enabled = cache
        self.stats = LCAStats()
        self._parallel_memo: Dict[Tuple[int, int], bool] = {}

    # -- queries ----------------------------------------------------------

    def parallel(self, a: int, b: int) -> bool:
        """May step nodes *a* and *b* logically execute in parallel?

        The memoized hot path of the whole analysis.
        """
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        self.stats.queries += 1
        if self.cache_enabled:
            memo = self._parallel_memo
            cached = memo.get(key)
            if cached is not None:
                return cached
            self.stats.unique += 1
            verdict = self._parallel_walk(key[0], key[1])
            memo[key] = verdict
            return verdict
        # Uncached mode still tracks uniqueness so Table 1 can be produced
        # with the cache disabled.
        if key not in self._parallel_memo:
            self.stats.unique += 1
            self._parallel_memo[key] = True  # presence marker only
        return self._parallel_walk(key[0], key[1])

    def series(self, a: int, b: int) -> bool:
        """``True`` iff *a* and *b* are distinct and cannot run in parallel."""
        return a != b and not self.parallel(a, b)

    def lca(self, a: int, b: int) -> int:
        """Plain LCA (not memoized; rarely needed by clients directly)."""
        return relation.lca(self.tree, a, b)

    def precedes(self, a: int, b: int) -> bool:
        """``True`` iff step *a* must complete before step *b* starts."""
        return relation.precedes(self.tree, a, b)

    # -- internals ----------------------------------------------------------

    def _parallel_walk(self, a: int, b: int) -> bool:
        """Uncached SPD3 parallelism test, with hop accounting."""
        tree = self.tree
        self.stats.hops += abs(tree.depth(a) - tree.depth(b))
        ancestor, toward_a, toward_b = relation.lca_with_children(tree, a, b)
        self.stats.hops += tree.depth(a) - tree.depth(ancestor)
        if toward_a == ancestor or toward_b == ancestor:
            return False
        if tree.sibling_rank(toward_a) < tree.sibling_rank(toward_b):
            left_child = toward_a
        else:
            left_child = toward_b
        return tree.kind(left_child) is NodeKind.ASYNC

    def reset_stats(self) -> None:
        """Zero the counters (the memo table is kept)."""
        self.stats = LCAStats()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<LCAEngine layout={self.tree.layout_name} cache={self.cache_enabled} "
            f"queries={self.stats.queries} unique={self.stats.unique}>"
        )
