"""Label-based parallelism queries (the Mellor-Crummey lineage).

The paper's related work traces DPST race detection back to on-the-fly
schemes that attach *labels* to tasks so that "can these two run in
parallel?" becomes a label comparison instead of a tree walk
(Mellor-Crummey's offset-span labeling, SP-bags, ...).  This module
implements that alternative over the same DPST:

Every node carries a **path label**: the sequence of ``(sibling_rank,
is_async)`` pairs along its root path.  Labels grow by one entry per tree
level and are immutable once assigned.  For steps ``a`` and ``b``:

* if one label is a prefix of the other, the nodes are ancestor-related
  -> series;
* otherwise, at the first differing index, the entry with the smaller
  rank belongs to the left node, and (the SPD3 rule) the two are parallel
  iff *that* entry is an async child.

Trade-offs versus the LCA engine (measured by
``benchmarks/bench_label_engine.py``): queries touch only the two labels
(no tree access, no memo needed for correctness), but labels cost O(depth)
memory per node -- the very overhead the paper's flat-array DPST avoids.
:class:`LabelEngine` is a drop-in replacement for
:class:`~repro.dpst.lca.LCAEngine` (same ``parallel``/``series`` surface,
same statistics), selected with ``run_program(...,
parallel_engine="labels")``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind, ROOT_ID
from repro.dpst.stats import EngineStats

#: One label entry: (sibling rank, is-async flag).
LabelEntry = Tuple[int, bool]
Label = Tuple[LabelEntry, ...]


def compute_label(tree: DPSTBase, node: int) -> Label:
    """The root-path label of *node* (root itself has the empty label)."""
    entries: List[LabelEntry] = []
    current = node
    while current != ROOT_ID:
        entries.append(
            (tree.sibling_rank(current), tree.kind(current) is NodeKind.ASYNC)
        )
        current = tree.parent(current)
    entries.reverse()
    return tuple(entries)


def labels_parallel(label_a: Label, label_b: Label) -> bool:
    """The SPD3 verdict from two labels alone."""
    if label_a == label_b:
        return False
    limit = min(len(label_a), len(label_b))
    for index in range(limit):
        entry_a = label_a[index]
        entry_b = label_b[index]
        if entry_a == entry_b:
            continue
        if entry_a[0] == entry_b[0]:
            # Same rank, different async flag: impossible in one tree.
            raise ValueError("labels from different trees")
        left = entry_a if entry_a[0] < entry_b[0] else entry_b
        return left[1]  # parallel iff the left branch is an async child
    # One path is a prefix of the other: ancestor/descendant.
    return False


class LabelEngine:
    """Drop-in parallelism engine computing verdicts from node labels.

    Labels are materialized lazily per node and cached (they are immutable
    because DPST paths never change).  The ``stats`` counters are the same
    :class:`~repro.dpst.stats.EngineStats` every engine carries, so
    Table 1 collection and the ``engine.*`` metrics work unchanged;
    ``hops`` counts label entries compared.
    """

    #: Interface marker checked by tests; mirrors LCAEngine.
    engine_name = "labels"
    cache_enabled = True

    def __init__(self, tree: DPSTBase, cache: bool = True) -> None:
        self.tree = tree
        self.cache_enabled = cache
        self.stats = EngineStats()
        self._labels: Dict[int, Label] = {}
        self._seen_pairs: Dict[Tuple[int, int], bool] = {}

    def label(self, node: int) -> Label:
        """The (cached) label of *node*."""
        cached = self._labels.get(node)
        if cached is None:
            cached = compute_label(self.tree, node)
            self._labels[node] = cached
        return cached

    # -- LCAEngine-compatible surface -------------------------------------

    def parallel(self, a: int, b: int) -> bool:
        if a == b:
            return False
        key = (a, b) if a < b else (b, a)
        self.stats.queries += 1
        if self.cache_enabled:
            cached = self._seen_pairs.get(key)
            if cached is not None:
                return cached
            self.stats.unique += 1
            verdict = self._verdict(a, b)
            self._seen_pairs[key] = verdict
            return verdict
        if key not in self._seen_pairs:
            self.stats.unique += 1
            self._seen_pairs[key] = True  # presence marker
        return self._verdict(a, b)

    def series(self, a: int, b: int) -> bool:
        return a != b and not self.parallel(a, b)

    def precedes(self, a: int, b: int) -> bool:
        """Step *a* strictly before *b*: in series and left of it."""
        if a == b or self.parallel(a, b):
            return False
        label_a, label_b = self.label(a), self.label(b)
        if label_a == label_b[: len(label_a)]:
            return True   # a is an ancestor: it started first
        if label_b == label_a[: len(label_b)]:
            return False
        for entry_a, entry_b in zip(label_a, label_b):
            if entry_a != entry_b:
                return entry_a[0] < entry_b[0]
        return False  # pragma: no cover - unreachable

    def reset_stats(self) -> None:
        self.stats = EngineStats()

    # -- internals -----------------------------------------------------------

    def _verdict(self, a: int, b: int) -> bool:
        label_a = self.label(a)
        label_b = self.label(b)
        self.stats.hops += min(len(label_a), len(label_b))
        return labels_parallel(label_a, label_b)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<LabelEngine nodes_labeled={len(self._labels)} "
            f"queries={self.stats.queries}>"
        )
