"""Abstract interface shared by the two DPST layouts.

The interface is deliberately minimal -- insertion plus the per-node
accessors the LCA engine needs (parent, depth, kind, sibling rank).  Keeping
queries out of the storage classes lets :mod:`repro.dpst.relation` implement
the series-parallel logic once for both layouts, which is what the paper's
Figure 14 ablation varies: only the memory layout differs.

Structural invariants enforced at insertion time:

* the root is a finish node and never re-parented;
* children may only be added under async or finish nodes (steps are leaves);
* a node's parent and its rank among its siblings are immutable -- the DPST
  only ever *grows*, so paths to the root are stable, which is what makes
  concurrent queries sound in the original SPD3 work.
"""

from __future__ import annotations

import abc
from typing import Iterator, List

from repro.dpst.nodes import NodeKind, NULL_ID, ROOT_ID
from repro.errors import DPSTError


class DPSTBase(abc.ABC):
    """Common behaviour of :class:`LinkedDPST` and :class:`ArrayDPST`."""

    #: Human-readable layout name; used by benchmarks and reprs.
    layout_name = "abstract"

    # -- construction ------------------------------------------------------

    @abc.abstractmethod
    def add_node(self, parent: int, kind: NodeKind) -> int:
        """Append a new child of *parent* with the given *kind*.

        The new node becomes the rightmost child of *parent*; its id is the
        next dense integer.  Raises :class:`DPSTError` when *parent* does
        not exist or is a step node.
        """

    # -- per-node accessors -------------------------------------------------

    @abc.abstractmethod
    def kind(self, node: int) -> NodeKind:
        """The :class:`NodeKind` of *node*."""

    @abc.abstractmethod
    def parent(self, node: int) -> int:
        """Parent id of *node*; :data:`NULL_ID` for the root."""

    @abc.abstractmethod
    def depth(self, node: int) -> int:
        """Distance from the root (root has depth 0)."""

    @abc.abstractmethod
    def sibling_rank(self, node: int) -> int:
        """Zero-based position of *node* among its parent's children.

        Children are appended left-to-right in the program order of the
        controlling task, so comparing ranks of two children of one node
        gives their left-to-right order.
        """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Total number of nodes (including the root)."""

    # -- shared helpers ------------------------------------------------------

    def _check_parent(self, parent: int, size: int) -> None:
        """Validate an insertion parent; shared by both layouts."""
        if parent < 0 or parent >= size:
            raise DPSTError(f"unknown parent node id {parent}")
        if self.kind(parent) is NodeKind.STEP:
            raise DPSTError(
                f"cannot add a child under step node {parent}: steps are leaves"
            )

    def is_step(self, node: int) -> bool:
        """``True`` iff *node* is a step (leaf) node."""
        return self.kind(node) is NodeKind.STEP

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids in insertion order."""
        return iter(range(len(self)))

    def ancestors(self, node: int) -> Iterator[int]:
        """Yield the proper ancestors of *node*, nearest first."""
        current = self.parent(node)
        while current != NULL_ID:
            yield current
            current = self.parent(current)

    def is_ancestor(self, candidate: int, node: int) -> bool:
        """``True`` iff *candidate* is *node* or a proper ancestor of it."""
        current = node
        candidate_depth = self.depth(candidate)
        while self.depth(current) > candidate_depth:
            current = self.parent(current)
        return current == candidate

    def path_to_root(self, node: int) -> List[int]:
        """The node ids from *node* (inclusive) up to the root."""
        return [node, *self.ancestors(node)]

    def children(self, node: int) -> List[int]:
        """Children of *node*, left to right.

        Provided as a generic (linear-scan) implementation; layouts that
        store child lists override it with an O(#children) version.
        """
        found = [child for child in self.nodes() if self.parent(child) == node]
        found.sort(key=self.sibling_rank)
        return found

    def step_nodes(self) -> List[int]:
        """All step-node ids, in insertion order."""
        return [node for node in self.nodes() if self.is_step(node)]

    def validate(self) -> None:
        """Check every structural invariant; raises :class:`DPSTError`.

        Intended for tests and debugging, not hot paths: runs in O(n).
        """
        if len(self) == 0:
            raise DPSTError("DPST has no root")
        if self.kind(ROOT_ID) is not NodeKind.FINISH:
            raise DPSTError("root must be a finish node")
        if self.parent(ROOT_ID) != NULL_ID:
            raise DPSTError("root must have NULL parent")
        ranks: dict = {}
        for node in self.nodes():
            if node == ROOT_ID:
                continue
            parent = self.parent(node)
            if not 0 <= parent < len(self):
                raise DPSTError(f"node {node} has out-of-range parent {parent}")
            if parent >= node:
                raise DPSTError(
                    f"node {node} has parent {parent} inserted after it; "
                    "children must be added after their parent"
                )
            if self.kind(parent) is NodeKind.STEP:
                raise DPSTError(f"step node {parent} has child {node}")
            if self.depth(node) != self.depth(parent) + 1:
                raise DPSTError(f"node {node} has inconsistent depth")
            expected_rank = ranks.get(parent, 0)
            if self.sibling_rank(node) != expected_rank:
                raise DPSTError(
                    f"node {node} has sibling rank {self.sibling_rank(node)}, "
                    f"expected {expected_rank}"
                )
            ranks[parent] = expected_rank + 1

    def dump(self) -> str:
        """Render the tree as an indented text diagram (tests/debugging)."""
        lines: List[str] = []

        def visit(node: int, indent: int) -> None:
            label = f"{self.kind(node).short()}{node}"
            lines.append("  " * indent + label)
            for child in self.children(node):
                visit(child, indent + 1)

        visit(ROOT_ID, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} nodes={len(self)}>"
