"""Series-parallel relations over a DPST.

The SPD3 rule (Raman et al., PLDI 2012; restated in Section 2 of the CGO'16
paper): two distinct step nodes ``S1`` and ``S2``, with ``S1`` to the left
of ``S2`` in the tree's sibling order, may logically execute in parallel iff
the immediate child of ``LCA(S1, S2)`` that is an ancestor of ``S1`` is an
*async* node.  Otherwise ``S1`` precedes ``S2`` ("in series").

These functions are the uncached reference implementation; hot paths go
through :class:`repro.dpst.lca.LCAEngine`, which memoizes the expensive
tree walk and collects the query statistics Table 1 reports.
"""

from __future__ import annotations

from typing import Tuple

from repro.dpst.base import DPSTBase
from repro.dpst.nodes import NodeKind


def lca_with_children(tree: DPSTBase, a: int, b: int) -> Tuple[int, int, int]:
    """``(lca, child_toward_a, child_toward_b)`` for nodes *a* and *b*.

    ``child_toward_x`` is the immediate child of the LCA on the path to
    ``x``; when ``x`` is itself the LCA the LCA id is returned in its place.
    Dispatches to the layout-specific walk when available.
    """
    layout_query = getattr(tree, "lca_with_children", None)
    if layout_query is not None:
        return layout_query(a, b)
    # Generic fallback for third-party DPST implementations.
    child_a = -1
    child_b = -1
    while tree.depth(a) > tree.depth(b):
        child_a, a = a, tree.parent(a)
    while tree.depth(b) > tree.depth(a):
        child_b, b = b, tree.parent(b)
    while a != b:
        child_a, a = a, tree.parent(a)
        child_b, b = b, tree.parent(b)
    return a, (a if child_a == -1 else child_a), (a if child_b == -1 else child_b)


def lca(tree: DPSTBase, a: int, b: int) -> int:
    """The least common ancestor of nodes *a* and *b*."""
    return lca_with_children(tree, a, b)[0]


def left_of(tree: DPSTBase, a: int, b: int) -> bool:
    """``True`` iff node *a* is to the left of node *b* in the DPST.

    Left-ness is the sibling order at the LCA, which reflects the
    left-to-right sequencing of computations of the common ancestor task.
    An ancestor is considered to the left of its descendants (it started
    first); two equal nodes are not left of each other.
    """
    if a == b:
        return False
    ancestor, toward_a, toward_b = lca_with_children(tree, a, b)
    if toward_a == ancestor:
        return True  # a IS the LCA, hence an ancestor of b.
    if toward_b == ancestor:
        return False
    return tree.sibling_rank(toward_a) < tree.sibling_rank(toward_b)


def parallel(tree: DPSTBase, a: int, b: int) -> bool:
    """``True`` iff step nodes *a* and *b* may logically execute in parallel.

    Implements the SPD3 rule.  A node is never parallel with itself, and an
    ancestor/descendant pair is always in series.
    """
    if a == b:
        return False
    ancestor, toward_a, toward_b = lca_with_children(tree, a, b)
    if toward_a == ancestor or toward_b == ancestor:
        return False  # ancestor/descendant: strictly ordered.
    if tree.sibling_rank(toward_a) < tree.sibling_rank(toward_b):
        left_child = toward_a
    else:
        left_child = toward_b
    return tree.kind(left_child) is NodeKind.ASYNC


def precedes(tree: DPSTBase, a: int, b: int) -> bool:
    """``True`` iff step *a* must complete before step *b* starts.

    For step nodes this is: *a* is left of *b* and they are not parallel.
    """
    if a == b:
        return False
    return left_of(tree, a, b) and not parallel(tree, a, b)


def series(tree: DPSTBase, a: int, b: int) -> bool:
    """``True`` iff *a* and *b* are distinct and ordered (either direction)."""
    return a != b and not parallel(tree, a, b)
