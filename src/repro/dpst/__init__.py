"""Dynamic Program Structure Tree (DPST).

The DPST (Raman et al., PLDI 2012 -- the SPD3 race detector) is an ordered
tree that captures the series-parallel structure of a task parallel
execution:

* **step** nodes are maximal instruction sequences without task-management
  constructs; they are always leaves and every memory access belongs to one;
* **async** nodes represent spawned tasks that run asynchronously with the
  remainder of their parent;
* **finish** nodes represent scopes that wait for all spawned descendants.

Two step nodes can logically execute in parallel iff the immediate child of
their least common ancestor that is an ancestor of the *left* step is an
async node (see :mod:`repro.dpst.relation`).

Two interchangeable implementations are provided, mirroring the paper's
Figure 14 ablation:

* :class:`~repro.dpst.linked.LinkedDPST` -- classic pointer-based nodes;
* :class:`~repro.dpst.array.ArrayDPST`   -- the paper's optimized layout, a
  linear array of nodes with parent *indices* instead of pointers.

Both satisfy the :class:`~repro.dpst.base.DPSTBase` interface, and four
registered parallelism engines answer (optionally cached) series-parallel
queries over either -- see :mod:`repro.dpst.engines` for the
:class:`~repro.dpst.engines.ParallelismEngine` protocol and the
``register_engine`` / ``available_engines`` / ``make_engine`` registry.
"""

from repro.dpst.nodes import NodeKind, ROOT_ID, NULL_ID
from repro.dpst.base import DPSTBase
from repro.dpst.linked import LinkedDPST
from repro.dpst.array import ArrayDPST
from repro.dpst.stats import EngineStats
from repro.dpst.engines import (
    ParallelismEngine,
    UnknownEngineError,
    available_engines,
    engine_name_of,
    make_engine,
    register_engine,
)
from repro.dpst.lca import LCAEngine, LCAStats
from repro.dpst.labels import LabelEngine
from repro.dpst.vclock import VectorClockEngine
from repro.dpst.depa import DePaEngine
from repro.dpst.relation import lca, parallel, precedes, left_of

__all__ = [
    "EngineStats",
    "LabelEngine",
    "NodeKind",
    "ROOT_ID",
    "NULL_ID",
    "DPSTBase",
    "DePaEngine",
    "LinkedDPST",
    "ArrayDPST",
    "LCAEngine",
    "LCAStats",
    "ParallelismEngine",
    "UnknownEngineError",
    "VectorClockEngine",
    "available_engines",
    "engine_name_of",
    "lca",
    "make_engine",
    "parallel",
    "precedes",
    "left_of",
    "register_engine",
]


def make_dpst(layout: str = "array") -> DPSTBase:
    """Create a DPST with the requested *layout* (``"array"`` | ``"linked"``)."""
    if layout == "array":
        return ArrayDPST()
    if layout == "linked":
        return LinkedDPST()
    raise ValueError(f"unknown DPST layout: {layout!r} (expected 'array' or 'linked')")
