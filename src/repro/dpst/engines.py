"""The parallelism-engine API: protocol, registry, construction.

Every atomicity checker in this reproduction spends its hot path asking
one question -- *may these two steps logically execute in parallel?* --
and the paper answers it with memoized DPST LCA walks.  The related work
answers the same question very differently (offset-span labels, DePa's
graded dag-path labels, vector clocks), so the question itself is worth
a formal surface:

* :class:`ParallelismEngine` is the protocol every engine implements:
  ``parallel(a, b)`` / ``series(a, b)`` / ``precedes(a, b)`` queries over
  DPST node ids, plus ``stats`` (an
  :class:`~repro.dpst.stats.EngineStats`) and ``reset_stats()``.
* :func:`register_engine` / :func:`available_engines` /
  :func:`make_engine` form the registry.  Everything that accepts an
  engine name -- :func:`repro.runtime.program.run_program`,
  :class:`repro.session.CheckSession`, the sharded driver, the CLI's
  ``--engine`` flags and the fuzz oracle's configuration matrix --
  resolves it here, so registering an engine makes it reachable from
  every entry point at once (and automatically covered by the
  engine-equivalence property tests and the differential fuzz oracle).

Built-in engines
----------------
``lca``
    :class:`~repro.dpst.lca.LCAEngine` -- memoized tree walks (the
    paper's approach; the default everywhere).
``labels``
    :class:`~repro.dpst.labels.LabelEngine` -- offset-span-style path
    label comparison (Mellor-Crummey lineage).
``vc``
    :class:`~repro.dpst.vclock.VectorClockEngine` -- per-task vector
    clocks maintained incrementally over spawn/finish, a linear total
    number of clock operations (Mathur & Viswanathan, arXiv:2001.04961).
``depa``
    :class:`~repro.dpst.depa.DePaEngine` -- graded dag-path labels
    packed into machine integers, O(1) word operations per query and no
    tree walk (Westrick, Wang & Acar, arXiv:2204.14168).

Adding an engine (see ``docs/api.md``)::

    from repro.dpst.engines import register_engine

    register_engine("mine", lambda tree, cache=True: MyEngine(tree, cache))

Unknown names raise :class:`UnknownEngineError`, which subclasses both
:class:`~repro.errors.CheckerError` (the library's error family) and
:class:`ValueError` (what historical callers caught), and always names
the valid choices.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

try:  # pragma: no cover - Protocol exists on every supported version
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - pre-3.8 fallback, never hit
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.dpst.base import DPSTBase
from repro.dpst.stats import EngineStats
from repro.errors import CheckerError, TraceError


@runtime_checkable
class ParallelismEngine(Protocol):
    """The query surface every parallelism engine implements.

    Engines answer series-parallel questions about DPST node ids.  All
    verdicts must match the SPD3 tree semantics implemented by
    :mod:`repro.dpst.relation` -- the registry-driven property tests and
    the differential fuzz oracle enforce exactly that for every
    registered engine.

    Required attributes: ``tree`` (the DPST queried), ``cache_enabled``
    (whether per-pair memoization is on), ``stats`` (an
    :class:`~repro.dpst.stats.EngineStats`), and ``engine_name`` (the
    registry name, used to label per-engine metrics).
    """

    tree: DPSTBase
    cache_enabled: bool
    stats: EngineStats
    engine_name: str

    def parallel(self, a: int, b: int) -> bool:
        """May nodes *a* and *b* logically execute in parallel?"""
        ...

    def series(self, a: int, b: int) -> bool:
        """Are *a* and *b* distinct and ordered (either direction)?"""
        ...

    def precedes(self, a: int, b: int) -> bool:
        """Must *a* complete before *b* starts?"""
        ...

    def reset_stats(self) -> None:
        """Zero the query counters (caches may be kept)."""
        ...


#: A factory: ``factory(tree, cache=True) -> ParallelismEngine``.
EngineFactory = Callable[..., Any]


class UnknownEngineError(CheckerError, TraceError, ValueError):
    """An engine name that is not in the registry.

    Subclasses :class:`ValueError` (what the pre-registry runtime raised
    for the hardcoded ``{lca, labels}`` pair) and
    :class:`~repro.errors.TraceError` (what the replay path raised), so
    every historical ``except`` clause keeps working while new code can
    catch the one precise type.
    """

    def __init__(self, name: Any) -> None:
        choices = ", ".join(available_engines())
        super().__init__(
            f"unknown parallelism engine {name!r} "
            f"(valid engines: {choices})"
        )
        self.name = name


_ENGINE_FACTORIES: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register *factory* under *name* (replacing any previous binding).

    The factory is called as ``factory(tree, cache=...)`` and must
    return a :class:`ParallelismEngine`.  Registration also reserves the
    engine's per-engine metric names (``engine.<name>.queries`` etc.) in
    the :data:`repro.obs.METRIC_NAMES` registry so its counters render
    in ``repro stats`` output like the built-ins'.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"engine name must be a non-empty string, got {name!r}")
    _ENGINE_FACTORIES[name] = factory
    # Lazy import: repro.obs is optional at registration time and must
    # not become an import cycle (it never imports this module's users).
    try:
        from repro.obs import register_engine_metric_names
    except ImportError:  # pragma: no cover - partial-install safety only
        return
    register_engine_metric_names(name)


def available_engines() -> Tuple[str, ...]:
    """The registered engine names, sorted (the CLI renders these)."""
    return tuple(sorted(_ENGINE_FACTORIES))


def make_engine(name: str, tree: DPSTBase, cache: bool = True) -> Any:
    """Build the registered engine *name* over *tree*.

    Raises :class:`UnknownEngineError` -- naming the valid engines --
    for anything not registered.
    """
    factory = _ENGINE_FACTORIES.get(name)
    if factory is None:
        raise UnknownEngineError(name)
    return factory(tree, cache=cache)


def engine_name_of(engine: Any) -> str:
    """The registry name an engine labels its metrics with."""
    return getattr(engine, "engine_name", type(engine).__name__)


# -- built-in registrations ---------------------------------------------------


def _make_lca(tree: DPSTBase, cache: bool = True):
    from repro.dpst.lca import LCAEngine

    return LCAEngine(tree, cache=cache)


def _make_labels(tree: DPSTBase, cache: bool = True):
    from repro.dpst.labels import LabelEngine

    return LabelEngine(tree, cache=cache)


def _make_vc(tree: DPSTBase, cache: bool = True):
    from repro.dpst.vclock import VectorClockEngine

    return VectorClockEngine(tree, cache=cache)


def _make_depa(tree: DPSTBase, cache: bool = True):
    from repro.dpst.depa import DePaEngine

    return DePaEngine(tree, cache=cache)


register_engine("lca", _make_lca)
register_engine("labels", _make_labels)
register_engine("vc", _make_vc)
register_engine("depa", _make_depa)
