"""Setup shim: enables legacy editable installs (``pip install -e .``)
on environments without the ``wheel`` package (this sandbox has no network
access, so PEP 517 editable builds that need ``bdist_wheel`` fail).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
