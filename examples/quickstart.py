#!/usr/bin/env python
"""Quickstart: find an atomicity violation that never happens in the trace.

Two parallel tasks increment a shared counter with an unprotected
read-modify-write.  Under the default serial executor each task runs to
completion at its spawn point, so the observed execution is perfectly
serial -- a trace-based checker (Velodrome) sees nothing wrong.  The
optimized checker nevertheless reports the violation, because in *another*
legal schedule one task's write lands between the other's read and write
(the classic lost update).

Run: ``python examples/quickstart.py``
"""

from repro import CheckSession, TaskProgram


def increment(ctx):
    """One task's unprotected counter bump: read then write, one step."""
    value = ctx.read("counter")
    ctx.write("counter", value + 1)


def main(ctx):
    ctx.write("counter", 0)
    ctx.spawn(increment)
    ctx.spawn(increment)
    ctx.sync()
    return ctx.read("counter")


if __name__ == "__main__":
    program = TaskProgram(main, name="quickstart")

    # The unified front door: the program executes once (lazily, with
    # trace recording) and every check() replays that same trace, so
    # both analyses see the identical execution.
    session = CheckSession(program)
    session.check("optimized")
    session.check("velodrome")

    print(f"final counter value in this schedule: {session.run_result.value}")
    print()
    print("optimized checker (all schedules for this input):")
    print(session.reports["optimized"].describe())
    print()
    print("velodrome (this trace only):")
    print(session.reports["velodrome"].describe())
    print()
    first = session.first_violation
    print(f"first violation: pattern {first.pattern} on {first.location!r}")
    print()
    print(
        "Velodrome is quiet because the serial schedule really was atomic;\n"
        "the optimized checker reasons over every schedule the task structure\n"
        "allows, from this single execution."
    )
