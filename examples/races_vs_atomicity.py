#!/usr/bin/env python
"""Data races and atomicity violations are different properties.

Two programs make the paper's Section 1 separation concrete, analysed by
a DPST-based race detector (the SPD3 lineage the paper builds on) and the
atomicity checker side by side:

* ``racy_but_atomic`` -- four parallel tasks each perform ONE unordered
  write. Every pair of writes is a data race, but no step performs two
  accesses, so there is no atomic region to violate.
* ``atomic_violation_without_race`` -- the paper's Figure 11: every
  access to X is protected by lock L (data-race free), yet one task reads
  and writes X in two *separate* critical sections, so a parallel locked
  write can slip in between.

It also shows the strawman fix-up: plain Velodrome on the serial trace
sees nothing, and Velodrome combined with exhaustive interleaving
exploration (the combination the paper says is required) finds the
violation only after replaying many schedules.

Run: ``python examples/races_vs_atomicity.py``
"""

from repro import (
    ExploringVelodrome,
    OptAtomicityChecker,
    RaceDetector,
    TaskProgram,
    VelodromeChecker,
    run_program,
)


def racy_but_atomic():
    def writer(ctx):
        ctx.write("X", ctx.task_id)

    def main(ctx):
        for _ in range(4):
            ctx.spawn(writer)
        ctx.sync()

    return TaskProgram(main, name="racy_but_atomic", initial_memory={"X": 0})


def atomic_violation_without_race():
    def split_rmw(ctx):
        with ctx.lock("L"):
            value = ctx.read("X")
        with ctx.lock("L"):
            ctx.write("X", value + 1)

    def locked_writer(ctx):
        with ctx.lock("L"):
            ctx.write("X", 100)

    def main(ctx):
        ctx.spawn(split_rmw)
        ctx.spawn(locked_writer)
        ctx.sync()

    return TaskProgram(
        main, name="atomicity_without_race", initial_memory={"X": 0}
    )


def analyse(program):
    races = RaceDetector()
    atomicity = OptAtomicityChecker()
    result = run_program(program, observers=[races, atomicity])
    print(f"=== {program.name} ===")
    print(f"data races:           {races.describe()}")
    print(f"atomicity violations: {result.report().describe()}")
    print()
    return result


if __name__ == "__main__":
    analyse(racy_but_atomic())
    analyse(atomic_violation_without_race())

    print("=== the strawman: Velodrome needs interleaving exploration ===")
    program = atomic_violation_without_race()
    plain = run_program(program, observers=[VelodromeChecker()])
    print(f"velodrome, one serial trace: {plain.report().describe()}")
    exploring = ExploringVelodrome()
    run_program(program, observers=[exploring])
    print(
        f"velodrome + explorer: found violations on "
        f"{sorted(exploring.violation_locations())} after replaying "
        f"{exploring.schedules_explored} schedules"
    )
    print(
        "\nThe optimized checker reached the same verdict from the single\n"
        "observed trace -- the paper's headline trade."
    )
