#!/usr/bin/env python
"""The paper's running example (Figures 1, 2, 5, 10, 11 and 12).

Builds the three-task program of Figure 1, prints its DPST (Figure 2's
shape: root finish F, step S11, inner finish holding async(T2), step S12,
async(T3)), runs the optimized checker, and shows the detected RWW triple
on X -- the violation that never manifests in the observed trace.  Then
repeats the exercise with the lock-protected variant of Figure 11,
demonstrating lock versioning: the re-acquired lock L gets a fresh name
(L#1), so T2's read and write still form a two-access pattern and T3's
locked write is still reported as an interleaver.

Run: ``python examples/paper_example.py``
"""

from repro import OptAtomicityChecker, TaskProgram, run_program
from repro.runtime import SerialExecutor


# --- Figure 1: the unsynchronized program ------------------------------------


def t2(ctx):
    a = ctx.read("X")      # statement 6
    a = a + 1              # statement 7 (task-local arithmetic)
    ctx.write("X", a)      # statement 8


def t3(ctx):
    ctx.write("X", ctx.read("Y"))  # X = Y
    ctx.add("Y", 1)                # Y = Y + 1


def figure1(ctx):
    ctx.write("X", 10)     # step S11
    ctx.spawn(t2)
    ctx.add("Y", 1)        # step S12 -- between the spawns, as in Fig. 2
    ctx.spawn(t3)
    ctx.sync()


# --- Figure 11: the data-race-free variant -----------------------------------


def t2_locked(ctx):
    with ctx.lock("L"):
        a = ctx.read("X")
    a = a + 1
    with ctx.lock("L"):    # L released and re-acquired: versioned as L#1
        ctx.write("X", a)


def t3_locked(ctx):
    with ctx.lock("L"):
        ctx.write("X", ctx.read("Y"))
    ctx.add("Y", 1)


def figure11(ctx):
    ctx.write("X", 10)
    ctx.spawn(t2_locked)
    ctx.add("Y", 1)
    ctx.spawn(t3_locked)
    ctx.sync()


def run_and_report(body, title):
    print("=" * 72)
    print(title)
    print("=" * 72)
    program = TaskProgram(body, initial_memory={"X": 0, "Y": 0})
    # help-first LIFO reproduces the paper's trace order: T1's statements,
    # then T3's (9, 10), then T2's (6, 7, 8).
    executor = SerialExecutor(policy="help_first", order="lifo")
    result = run_program(program, executor=executor, observers=[OptAtomicityChecker()])
    print("DPST (cf. Figure 2):")
    print(result.dpst.dump())
    print()
    print(result.report().describe())
    print()


if __name__ == "__main__":
    run_and_report(
        figure1,
        "Figure 1: T2's read/write pair on X vs T3's parallel write (no locks)",
    )
    run_and_report(
        figure11,
        "Figure 11: same program, every X access lock-protected -- the\n"
        "violation survives because T2 uses two separate critical sections",
    )
