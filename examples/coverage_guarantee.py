#!/usr/bin/env python
"""When does "one trace covers all schedules" actually hold?

The checker's completeness has a precondition (paper, Section 3.1): the
observed trace must contain every shared access any schedule could
perform.  The paper's conclusion proposes static analysis to
over-approximate that access set; this example runs that proposal
(:mod:`repro.static`) on two programs:

* a branch-free reduction built from the TBB-style templates -- the
  static set is covered exactly, so the single-trace guarantee *stands*;
* a program whose rare branch depends on a racy read -- the static set
  shows an access the trace never performed, so the guarantee is *void*
  for that location (precisely the paper's stated restriction: "a
  conditional branch ... depends on a racy access").

Run: ``python examples/coverage_guarantee.py``
"""

from repro import OptAtomicityChecker, TaskProgram, parallel_reduce, run_program
from repro.static import analyze_function, check_trace_coverage


def safe_fixed_accesses(ctx):
    """Branch-free with constant locations: provably covered."""

    def left(c):
        c.add("east", 1)

    def right(c):
        c.add("west", 1)

    ctx.spawn(left)
    ctx.spawn(right)
    ctx.sync()
    ctx.write("total", ctx.read("east") + ctx.read("west"))


def reduction_with_dynamic_indices(ctx):
    """Branch-free, but locations are computed: coverage only provable
    up to a prefix pattern, reported as 'imprecise'."""
    total = parallel_reduce(
        ctx, 0, 8, lambda c, i: c.read(("data", i)), lambda a, b: a + b, 0, grain=2
    )
    ctx.write("total", total)


def racy_branch(ctx):
    """The rare branch depends on a racy flag: schedules differ in their
    access sets, which the coverage check surfaces.  (The reader is
    spawned first, so under the child-first executor it observes flag=0
    and the rare write never appears in the trace.)"""

    def maybe_log(c):
        if c.read("flag"):          # racy read: may see 0 or 1
            c.write("rare_log", 1)  # only some schedules perform this

    def set_flag(c):
        c.write("flag", 1)

    ctx.spawn(maybe_log)
    ctx.spawn(set_flag)
    ctx.sync()


def audit(body, name, initial=None):
    program = TaskProgram(body, name=name, initial_memory=initial or {})
    result = run_program(
        program, observers=[OptAtomicityChecker()], record_trace=True
    )
    static = analyze_function(body)
    coverage = check_trace_coverage(static, result.trace)
    print(f"=== {name} ===")
    print(static.describe())
    print()
    print(coverage.describe())
    print(f"checker verdict: {result.report().describe()}")
    if not coverage.complete and coverage.suspect_locations:
        print(
            f"-> treat verdicts for {sorted(coverage.suspect_locations, key=str)} "
            f"as this-trace-only"
        )
    print()


if __name__ == "__main__":
    audit(safe_fixed_accesses, "branch-free, constant locations")
    audit(
        reduction_with_dynamic_indices,
        "branch-free reduction, computed locations",
        initial={("data", i): i for i in range(8)},
    )
    audit(racy_branch, "racy branch (paper's stated restriction)")
