#!/usr/bin/env python
"""Multi-variable atomicity: the bank-transfer snapshot bug.

An auditor task reads both halves of an account (checking, then savings)
expecting a consistent snapshot, while a transfer task moves money between
them.  No *single* location is ever accessed twice by one step, so
per-variable checking finds nothing -- but annotating the two balances as
one atomic *group* (the paper's multi-variable support: "our approach
provides the same metadata to all those locations") exposes the torn read.

Run: ``python examples/bank_transfer.py``
"""

from repro import AtomicAnnotations, OptAtomicityChecker, TaskProgram, run_program


def auditor(ctx):
    """Reads the two balances; the sum should be invariant (200)."""
    checking = ctx.read("checking")
    savings = ctx.read("savings")
    ctx.write(("audit_total", ctx.task_id), checking + savings)


def transfer(ctx):
    """Moves 50 from checking to savings: two writes, one step."""
    ctx.add("checking", -50)
    ctx.add("savings", +50)


def main(ctx):
    ctx.spawn(auditor)
    ctx.spawn(transfer)
    ctx.sync()


def check(annotations, label):
    program = TaskProgram(
        main,
        name=f"bank_transfer[{label}]",
        initial_memory={"checking": 100, "savings": 100},
        annotations=annotations,
    )
    report = run_program(program, observers=[OptAtomicityChecker()]).report()
    print(f"--- {label} ---")
    print(report.describe())
    print()


if __name__ == "__main__":
    per_variable = AtomicAnnotations()
    per_variable.annotate("checking")
    per_variable.annotate("savings")
    check(per_variable, "per-variable annotations (misses the torn snapshot)")

    grouped = AtomicAnnotations()
    grouped.annotate_group("account", ["checking", "savings"])
    check(grouped, "multi-variable group annotation (detects it)")

    print(
        "With the group annotation, the auditor's two member reads form a\n"
        "read-read pattern on the shared group metadata, and the transfer's\n"
        "parallel member writes are unserializable interleavers (RWR)."
    )
