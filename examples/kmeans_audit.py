#!/usr/bin/env python
"""Auditing a realistic workload: k-means with and without its lock.

Runs the kmeans benchmark kernel (one of the paper's 13 applications)
under the optimized checker -- clean -- and then a deliberately broken
variant whose reduction into the shared per-cluster accumulators skips the
critical section.  The checker pinpoints the unprotected read-modify-write
triples on the accumulator locations, from a single serial execution in
which nothing actually interleaved.

Also demonstrates schedule insensitivity: the verdict is identical under
the child-first serial executor, a seeded random executor, and the
work-stealing thread pool.

Run: ``python examples/kmeans_audit.py``
"""

import random

from repro import OptAtomicityChecker, TaskProgram, run_program
from repro.runtime import RandomOrderExecutor, SerialExecutor, WorkStealingExecutor
from repro.workloads import get

K = 3
POINTS = 12


def _assign_chunk_unlocked(ctx, lo, hi):
    """The broken reduction: accumulates without the cluster lock."""
    for i in range(lo, hi):
        px = ctx.read(("px", i))
        py = ctx.read(("py", i))
        best, best_dist = 0, float("inf")
        for j in range(K):
            dist = (px - ctx.read(("cx", j))) ** 2 + (py - ctx.read(("cy", j))) ** 2
            if dist < best_dist:
                best, best_dist = j, dist
        # BUG: unprotected read-modify-write of shared accumulators.
        ctx.write(("sumx", best), ctx.read(("sumx", best)) + px)
        ctx.write(("sumy", best), ctx.read(("sumy", best)) + py)
        ctx.write(("count", best), ctx.read(("count", best)) + 1)


def broken_kmeans(ctx):
    for j in range(K):
        ctx.write(("cx", j), ctx.read(("px", j)))
        ctx.write(("cy", j), ctx.read(("py", j)))
        ctx.write(("sumx", j), 0.0)
        ctx.write(("sumy", j), 0.0)
        ctx.write(("count", j), 0)
    for lo in range(0, POINTS, 2):
        ctx.spawn(_assign_chunk_unlocked, lo, min(lo + 2, POINTS))
    ctx.sync()


def build_broken():
    rng = random.Random(5)
    initial = {}
    for i in range(POINTS):
        initial[("px", i)] = rng.uniform(0.0, 100.0)
        initial[("py", i)] = rng.uniform(0.0, 100.0)
    return TaskProgram(broken_kmeans, name="kmeans-broken", initial_memory=initial)


if __name__ == "__main__":
    clean = get("kmeans").build(1)
    report = run_program(clean, observers=[OptAtomicityChecker()]).report()
    print(f"shipped kmeans kernel: {report.describe()}")
    print()

    broken = build_broken()
    executors = [
        ("serial child-first", SerialExecutor()),
        ("serial help-first LIFO", SerialExecutor(policy="help_first", order="lifo")),
        ("random (seed=3)", RandomOrderExecutor(seed=3)),
        ("work stealing (4 workers)", WorkStealingExecutor(workers=4)),
    ]
    verdicts = []
    for label, executor in executors:
        result = run_program(broken, executor=executor, observers=[OptAtomicityChecker()])
        locations = sorted(result.report().locations())
        verdicts.append(locations)
        print(f"{label:28s} -> violations on {locations}")
    print()
    assert all(v == verdicts[0] for v in verdicts), "schedule-sensitive verdict!"
    print("identical verdict under every executor (schedule insensitivity).")
    print()
    first = run_program(broken, observers=[OptAtomicityChecker()]).report()
    print("sample report:")
    print(first.violations[0].describe())
