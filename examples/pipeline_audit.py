#!/usr/bin/env python
"""Auditing a TBB-style pipeline with shared stage state.

A three-stage image-ish pipeline (decode -> transform -> encode) processes
items in parallel waves.  The transform stage keeps a shared running
maximum for normalization.  Version A updates it with an unprotected
read-modify-write (classic pipeline bug: stages look sequential per item,
but the same stage runs concurrently across items); version B protects
the update with a lock.  The checker flags A and passes B -- from serial
traces in which nothing interleaved.

Run: ``python examples/pipeline_audit.py``
"""

from repro import OptAtomicityChecker, TaskProgram, parallel_pipeline, run_program

ITEMS = [3, 1, 4, 1, 5, 9, 2, 6]


def decode(ctx, raw):
    return raw * 10


def transform_unprotected(ctx, value):
    peak = ctx.read("peak")           # unprotected RMW on shared state
    if value > peak:
        ctx.write("peak", value)
    return value


def transform_locked(ctx, value):
    with ctx.lock("peak_lock"):       # one critical section
        peak = ctx.read("peak")
        if value > peak:
            ctx.write("peak", value)
    return value


def encode(ctx, value):
    return f"<{value}>"


def build(transform, label):
    def main(ctx):
        out = parallel_pipeline(
            ctx, ITEMS, [decode, transform, encode], max_in_flight=4
        )
        return out, ctx.read("peak")

    return TaskProgram(main, name=label, initial_memory={"peak": 0})


if __name__ == "__main__":
    for transform, label in (
        (transform_unprotected, "unprotected running max"),
        (transform_locked, "locked running max"),
    ):
        checker = OptAtomicityChecker()
        result = run_program(build(transform, label), observers=[checker])
        outputs, peak = result.value
        print(f"=== {label} ===")
        print(f"outputs: {outputs}")
        print(f"peak observed: {peak}")
        print(checker.report.describe())
        print()
    print(
        "Both versions computed the same outputs in these serial runs;\n"
        "only the checker can tell which one loses the peak under a real\n"
        "parallel schedule."
    )
