#!/usr/bin/env python
"""Lock versioning (Section 3.3): why holding the *same lock twice* is not
the same as holding it *once*.

Both workers below protect every access to the shared counter with lock L,
so the program is data-race free.  The buggy worker splits its
read-modify-write across two critical sections; the correct worker uses
one.  Lock versioning renames the re-acquired lock (L, then L#1), so the
buggy worker's locksets are disjoint and its pair is checkable, while the
correct worker's identical locksets suppress the pair.

Run: ``python examples/lock_versioning.py``
"""

from repro import OptAtomicityChecker, TaskProgram, run_program


def buggy_worker(ctx):
    """Read under L, write under a *second* critical section of L."""
    with ctx.lock("L"):
        value = ctx.read("counter")
    value += 1                      # stale by the time we re-acquire
    with ctx.lock("L"):
        ctx.write("counter", value)


def correct_worker(ctx):
    """The whole read-modify-write inside one critical section."""
    with ctx.lock("L"):
        value = ctx.read("counter")
        ctx.write("counter", value + 1)


def make_main(worker):
    def main(ctx):
        for _ in range(2):
            ctx.spawn(worker)
        ctx.sync()
        return ctx.read("counter")

    return main


def run(worker, label):
    program = TaskProgram(
        make_main(worker), name=label, initial_memory={"counter": 0}
    )
    result = run_program(program, observers=[OptAtomicityChecker()])
    print(f"--- {label} (final counter: {result.value}) ---")
    print(result.report().describe())
    print()


if __name__ == "__main__":
    run(buggy_worker, "split critical sections (buggy)")
    run(correct_worker, "single critical section (correct)")
    print(
        "Both programs are race free; only the split-critical-section one\n"
        "can lose an update, and lock versioning is what lets the checker\n"
        "tell them apart."
    )
