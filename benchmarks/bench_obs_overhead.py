"""BENCH-OBS -- cost of the observability layer on the replay hot path.

The design contract of :mod:`repro.obs` is that the default no-op
recorder is free: checkers accumulate plain integers on their per-event
paths and drivers flush them at phase boundaries, so a run that never
asks for metrics must not pay for them.  This harness checks the claim
on the same >= 100k-event synthetic trace the sharded benchmark uses:

* **baseline** -- the seed-era replay loop, hand-inlined (on_run_begin,
  a bare for-loop of on_memory, on_run_end);
* **disabled** -- :func:`repro.trace.replay.replay_memory_events` with
  no recorder (the default everywhere);
* **enabled**  -- the same replay with a collecting
  :class:`repro.obs.MetricsRecorder`.

The harness exits non-zero when the disabled path costs more than the
threshold (default 2%) over baseline, so CI can hold the line.  The
enabled column is informational -- flush-at-boundaries keeps it cheap,
but it is allowed to cost what it costs.

Two entry points:

* pytest-benchmark (small scale, runs with the rest of the bench suite)::

      PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py --benchmark-only

* standalone harness at full scale::

      PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--events N]
          [--repeats R] [--threshold PCT] [--quick] [--json OUT.json]
"""

import argparse
import json
import statistics
import sys
import time

import pytest

from repro.checker.optimized import OptAtomicityChecker
from repro.obs import MetricsRecorder
from repro.trace.replay import _make_context, replay_memory_events

try:
    from bench_sharded_pipeline import synthetic_trace
except ImportError:  # pytest imports us as a module, not from benchmarks/
    from benchmarks.bench_sharded_pipeline import synthetic_trace


def baseline_replay(trace) -> None:
    """The seed-era replay loop: no recorder parameter anywhere."""
    checker = OptAtomicityChecker()
    context = _make_context(trace.dpst, None)
    checker.on_run_begin(context)
    for event in trace.memory_events():
        checker.on_memory(event)
    checker.on_run_end(context)


def disabled_replay(trace) -> None:
    replay_memory_events(
        trace.memory_events(), OptAtomicityChecker(), dpst=trace.dpst
    )


def enabled_replay(trace) -> None:
    replay_memory_events(
        trace.memory_events(),
        OptAtomicityChecker(),
        dpst=trace.dpst,
        recorder=MetricsRecorder(),
    )


VARIANTS = [
    ("baseline", baseline_replay),
    ("disabled", disabled_replay),
    ("enabled", enabled_replay),
]


def time_variants(trace, repeats: int):
    """Timings and paired overheads over *repeats* interleaved rounds.

    Each round times every variant once, and overheads are computed
    *within* a round against that round's baseline before taking the
    median across rounds.  Pairing inside a round cancels the slow drift
    (allocator growth, shared-host contention) that makes independent
    best-of-N comparisons of near-identical code paths read a few
    percent apart in either direction.

    Returns ``(best_seconds, median_overhead_pct)`` dicts by variant.
    """
    best = {name: float("inf") for name, _ in VARIANTS}
    ratios = {name: [] for name, _ in VARIANTS}
    for _ in range(repeats):
        round_times = {}
        for name, fn in VARIANTS:
            started = time.perf_counter()
            fn(trace)
            round_times[name] = time.perf_counter() - started
            best[name] = min(best[name], round_times[name])
        base = round_times["baseline"]
        for name, _ in VARIANTS:
            ratios[name].append(100.0 * (round_times[name] - base) / base)
    overheads = {
        name: statistics.median(values) for name, values in ratios.items()
    }
    return best, overheads


# -- pytest-benchmark hooks --------------------------------------------------

BENCH_EVENTS = 20_000


@pytest.fixture(scope="module")
def bench_trace():
    return synthetic_trace(BENCH_EVENTS)


@pytest.mark.parametrize("variant", [name for name, _ in VARIANTS])
def test_obs_overhead(benchmark, bench_trace, variant):
    fn = dict(VARIANTS)[variant]
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["events"] = BENCH_EVENTS
    benchmark(fn, bench_trace)


# -- standalone harness ------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="max tolerated disabled-vs-baseline overhead, percent",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer events, laxer threshold (noise floor "
        "dominates at small scale)",
    )
    parser.add_argument("--json", metavar="OUT.json", default=None)
    args = parser.parse_args(argv)

    events = 10_000 if args.quick else args.events
    threshold = 10.0 if args.quick else args.threshold

    print(f"generating {events} memory events ...", flush=True)
    trace = synthetic_trace(events)
    # One throwaway pass warms allocator/caches before timing anything.
    disabled_replay(trace)

    timings, overheads = time_variants(trace, args.repeats)

    print(f"\n{'variant':>10} {'seconds':>9} {'events/s':>10} {'vs baseline':>12}")
    for name, _ in VARIANTS:
        seconds = timings[name]
        print(
            f"{name:>10} {seconds:>9.3f} {events / seconds:>10.0f} "
            f"{overheads[name]:>+11.1f}%"
        )

    ok = overheads["disabled"] <= threshold
    print(
        f"\ndisabled-path overhead {overheads['disabled']:+.1f}% "
        f"(threshold {threshold:.1f}%): {'OK' if ok else 'FAIL'}"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "benchmark": "obs_overhead",
                    "events": events,
                    "repeats": args.repeats,
                    "threshold_pct": threshold,
                    "seconds": timings,
                    "overhead_pct": overheads,
                    "ok": ok,
                },
                handle,
                indent=2,
            )
        print(f"json written to {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
