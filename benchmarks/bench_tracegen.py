"""TRACEGEN -- the Section 4 trace generator, timed end to end.

Generates a random task-parallel program of the configured shape, runs it
under the optimized checker, and (small configs only) cross-checks the
verdict against the exhaustive interleaving explorer -- the "detects all
atomicity violations for a given input by examining one execution trace"
demonstration as a repeatable benchmark.
"""

import pytest

from repro.checker import OptAtomicityChecker
from repro.runtime import run_program
from repro.trace.explore import explore_violation_locations
from repro.trace.generator import GeneratorConfig, TraceGenerator
from repro.trace.replay import replay_trace

CONFIGS = {
    "small-lockfree": GeneratorConfig(tasks=4, accesses_per_task=3, locations=2),
    "medium-locked": GeneratorConfig(
        tasks=8, accesses_per_task=4, locations=3, locks=2
    ),
    "wide": GeneratorConfig(tasks=16, accesses_per_task=3, locations=4, max_depth=3),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_generate_and_check(benchmark, name):
    generator = TraceGenerator(CONFIGS[name])
    seeds = iter(range(10_000))

    def run():
        program = generator.generate_program(seed=next(seeds))
        checker = OptAtomicityChecker()
        run_program(program, observers=[checker])
        return checker.report

    benchmark(run)


def test_checker_matches_explorer_on_generated_traces(benchmark):
    """One-trace completeness against the schedule-enumeration oracle."""
    generator = TraceGenerator(
        GeneratorConfig(tasks=3, accesses_per_task=2, locations=1, locks=1)
    )

    def run():
        agreements = 0
        for seed in range(6):
            trace = generator.generate_trace(seed=seed)
            if len(trace.memory_events()) > 8:
                continue
            found = set(replay_trace(trace, OptAtomicityChecker()).locations())
            truth = explore_violation_locations(trace, max_schedules=2_000)
            assert found == truth
            agreements += 1
        return agreements

    assert benchmark(run) > 0
