"""BENCH-STREAMING -- peak checker memory: O(window), not O(trace).

The workload is a *task churn* trace: rounds of short-lived tasks, each
performing a handful of lock-protected read-modify-writes on a small
fixed set of shared scalars and then ending.  Locations (and so the
global spaces, the paper's fixed twelve entries per location) stay
constant while the task count -- and with it the offline checker's local
metadata -- grows linearly with the trace.  One unlocked racy pair in
round 0 keeps the verdict non-trivial, and the locks keep the report a
few entries however long the trace runs.

Three scenarios over the same columnar trace file, peak-measured with
``tracemalloc`` (LCA memoization off everywhere, so the comparison is
metadata + buffering, not the shared cache):

* **materialized** -- ``load_trace`` then check: the full event list is
  resident (the pre-streaming front door);
* **offline** -- ``CheckSession(path)``: events stream from the file but
  every finished task's local metadata stays until the end;
* **streaming** -- ``check(streaming=True)`` at windows 1, 64 and
  unbounded: ended tasks are released at the next compaction sweep.

Claims enforced (exit 1 otherwise): every scenario reports the same
violations; ``streaming(64) < offline < materialized`` on peak bytes;
and the streaming peak stays under ``--budget-mb`` however many events
the trace holds -- the bounded-memory contract itself.

Standalone harness (same ``--quick`` / ``--json`` contract as the other
benchmarks)::

    PYTHONPATH=src python benchmarks/bench_streaming.py [EVENTS] [--budget-mb MB]
"""

import gc
import os
import sys
import time
import tracemalloc

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.dpst import ArrayDPST, NodeKind, ROOT_ID  # noqa: E402
from repro.report import READ, WRITE, normalize_report  # noqa: E402
from repro.runtime.events import MemoryEvent, TaskEndEvent  # noqa: E402
from repro.session import CheckSession  # noqa: E402
from repro.trace.serialize import dump_trace, load_trace  # noqa: E402
from repro.trace.trace import Trace  # noqa: E402

#: Shared scalars every task touches (global spaces stay this size).
LOCATIONS = 8
#: Locked RMW pairs per task; the *task count* scales with the trace.
ACCESSES_PER_TASK = 4


def churn_trace(memory_events: int) -> Trace:
    """Rounds of short-lived locked-RMW tasks over a fixed location set."""
    dpst = ArrayDPST()
    events = []
    seq = 0
    task = 0
    produced = 0
    while produced < memory_events:
        task += 1
        async_node = dpst.add_node(ROOT_ID, NodeKind.ASYNC)
        step = dpst.add_node(async_node, NodeKind.STEP)
        if task <= 2:
            # The round-0 bug: two parallel unlocked RMWs on one scalar.
            for access_type in (READ, WRITE):
                events.append(MemoryEvent(seq, task, step, "bug", access_type))
                seq += 1
                produced += 1
        for i in range(ACCESSES_PER_TASK):
            location = ("shared", (task + i) % LOCATIONS)
            # One versioned lock per critical section: the RMW pair shares
            # it, so no violation pair ever forms on these locations.
            lockset = (f"m{location[1]}@{task}",)
            for access_type in (READ, WRITE):
                events.append(
                    MemoryEvent(seq, task, step, location, access_type, lockset)
                )
                seq += 1
                produced += 1
        events.append(TaskEndEvent(seq, task))
        seq += 1
    return Trace(events, dpst=dpst)


def measured(label, fn):
    """Run *fn* under tracemalloc; return (report, peak_bytes, seconds)."""
    gc.collect()
    tracemalloc.start()
    started = time.perf_counter()
    report = fn()
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"  {label:>16}: peak {peak / 1e6:8.2f} MB in {elapsed:6.2f}s",
          flush=True)
    return report, peak, elapsed


def bench_streaming(events: int, tmp: str) -> dict:
    print(f"generating {events} memory events of task churn ...", flush=True)
    trace = churn_trace(events)
    tasks = sum(1 for e in trace.events if isinstance(e, TaskEndEvent))
    path = os.path.join(tmp, "churn.trc")
    dump_trace(trace, path, format="columnar")
    del trace
    print(f"  {tasks} tasks over {LOCATIONS + 1} locations, "
          f"{os.path.getsize(path) / 1e6:.2f} MB on disk", flush=True)

    results = {"events": events, "tasks": tasks, "scenarios": {}}
    reports = {}

    def run(label, fn):
        report, peak, elapsed = measured(label, fn)
        reports[label] = normalize_report(report)
        results["scenarios"][label] = {"peak_bytes": peak, "seconds": elapsed}

    run("materialized", lambda: CheckSession(
        load_trace(path), lca_cache=False).check())
    run("offline", lambda: CheckSession(path, lca_cache=False).check())
    for window in (1, 64, 0):
        label = "streaming-w" + ("inf" if window == 0 else str(window))
        run(label, lambda window=window: CheckSession(
            path, lca_cache=False).check(streaming=True, window=window))

    canonical = reports["offline"]
    results["violations"] = len(canonical)
    results["reports_agree"] = all(
        normal == canonical for normal in reports.values()
    )
    return results


def main(argv=None) -> int:
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        description="streaming checker peak-memory benchmark"
    )
    parser.add_argument("events", nargs="?", type=int, default=100_000)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 20k events regardless of the positional",
    )
    parser.add_argument(
        "--budget-mb", type=float, default=64.0,
        help="hard ceiling on the streaming-w64 peak (default: 64 MB)",
    )
    parser.add_argument("--json", metavar="OUT.json", default=None)
    args = parser.parse_args(argv)
    events = 20_000 if args.quick else args.events

    with tempfile.TemporaryDirectory() as tmp:
        results = bench_streaming(events, tmp)

    scenarios = results["scenarios"]
    streaming = scenarios["streaming-w64"]["peak_bytes"]
    offline = scenarios["offline"]["peak_bytes"]
    materialized = scenarios["materialized"]["peak_bytes"]
    print(
        f"\nstreaming-w64 uses {streaming / offline:.2f}x the offline peak, "
        f"{streaming / materialized:.2f}x the materialized peak "
        f"({results['violations']} violation(s) found by every scenario)"
    )

    if args.json:
        results["benchmark"] = "streaming"
        results["budget_mb"] = args.budget_mb
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"json written to {args.json}")

    failed = False
    if not results["reports_agree"] or not results["violations"]:
        print("FAIL: scenarios disagree (or found nothing)", file=sys.stderr)
        failed = True
    if not streaming < offline < materialized:
        print(
            "FAIL: expected streaming-w64 < offline < materialized peaks, "
            f"got {streaming} / {offline} / {materialized}",
            file=sys.stderr,
        )
        failed = True
    if streaming > args.budget_mb * 1e6:
        print(
            f"FAIL: streaming-w64 peak {streaming / 1e6:.2f} MB exceeds "
            f"the {args.budget_mb:.0f} MB budget",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
