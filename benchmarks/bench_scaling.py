"""ABL-SCALE -- how checking overhead scales with input size.

Sweeps three workloads across input scales and records absolute times for
baseline and checker.  The paper's fixed-size metadata implies per-access
checking cost should stay roughly constant as inputs grow (no history to
scan); the basic checker's cost grows with history length, which the
sweep exposes on the RMW-heavy kernels.
"""

import pytest

from repro.bench.harness import run_once
from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.runtime import run_program
from repro.workloads import get

SWEEP = [
    ("sort", 1),
    ("sort", 2),
    ("sort", 4),
    ("kmeans", 1),
    ("kmeans", 2),
    ("kmeans", 4),
    ("raycast", 1),
    ("raycast", 2),
    ("raycast", 4),
]

IDS = [f"{name}-x{scale}" for name, scale in SWEEP]


@pytest.mark.parametrize("name,scale", SWEEP, ids=IDS)
def test_optimized_scaling(benchmark, name, scale):
    spec = get(name)
    benchmark.extra_info["checker"] = "optimized"
    benchmark.extra_info["scale"] = scale

    def run():
        result = run_once(spec.build(scale), "optimized")
        assert not result.report()
        return result

    result = benchmark(run)
    benchmark.extra_info["accesses"] = result.stats.memory_events


@pytest.mark.parametrize("name,scale", SWEEP, ids=IDS)
def test_basic_scaling(benchmark, name, scale):
    """The unbounded-history reference, for the growth contrast."""
    spec = get(name)
    benchmark.extra_info["checker"] = "basic"
    benchmark.extra_info["scale"] = scale

    def run():
        checker = BasicAtomicityChecker()
        run_program(spec.build(scale), observers=[checker])
        assert not checker.report
        return checker

    checker = benchmark(run)
    benchmark.extra_info["history_entries"] = checker.total_history_entries()
