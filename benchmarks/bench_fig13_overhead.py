"""FIG13 -- checking overhead: optimized checker vs Velodrome.

Three timed configurations per workload (uninstrumented baseline, the
optimized checker, the Velodrome reimplementation).  The slowdown ratios
these produce are the bars of Figure 13; compare with
``python -m repro.bench.fig13`` for the rendered table including the
geometric mean (paper: 4.2x ours vs 4.6x Velodrome).
"""

import pytest

from repro.bench.harness import run_once

from benchmarks.conftest import BENCH_SCALE, workload_params


@pytest.mark.parametrize("spec", workload_params())
def test_baseline(benchmark, spec):
    benchmark.extra_info["config"] = "baseline"
    benchmark(lambda: run_once(spec.build(BENCH_SCALE), "baseline"))


@pytest.mark.parametrize("spec", workload_params())
def test_optimized_checker(benchmark, spec):
    benchmark.extra_info["config"] = "optimized"

    def run():
        result = run_once(spec.build(BENCH_SCALE), "optimized")
        assert not result.report()
        return result

    benchmark(run)


@pytest.mark.parametrize("spec", workload_params())
def test_velodrome_checker(benchmark, spec):
    benchmark.extra_info["config"] = "velodrome"

    def run():
        result = run_once(spec.build(BENCH_SCALE), "velodrome")
        assert not result.report()
        return result

    benchmark(run)
