"""TAB1 -- Table 1: per-benchmark characteristics under checking.

Times each workload under the optimized checker (the configuration whose
locations / DPST nodes / LCA queries / %unique Table 1 reports) and
asserts the qualitative properties the paper highlights.  The collected
counters are attached to each benchmark's ``extra_info`` so the JSON
output contains the full reproduced table.
"""

import pytest

from repro.bench.harness import run_once
from repro.checker import OptAtomicityChecker
from repro.runtime import run_program

from benchmarks.conftest import BENCH_SCALE, workload_params


@pytest.mark.parametrize("spec", workload_params())
def test_table1_row(benchmark, spec):
    program_factory = lambda: spec.build(BENCH_SCALE)

    def run():
        return run_program(
            program_factory(), observers=[OptAtomicityChecker()], collect_stats=True
        )

    result = benchmark(run)
    stats = result.stats
    benchmark.extra_info["locations"] = result.shadow.unique_locations
    benchmark.extra_info["dpst_nodes"] = stats.dpst_nodes
    benchmark.extra_info["lca_queries"] = stats.lca_queries
    benchmark.extra_info["unique_lca_pct"] = round(stats.unique_lca_percent, 2)
    benchmark.extra_info["paper_locations"] = spec.paper.locations
    benchmark.extra_info["paper_nodes"] = spec.paper.nodes
    benchmark.extra_info["paper_lcas"] = spec.paper.lcas
    # The kernels are the overhead benchmarks: they must stay clean.
    assert not result.report()
    # Table 1's signature blackscholes property.
    if spec.name == "blackscholes":
        assert stats.lca_queries == 0
    else:
        assert stats.lca_queries > 0
