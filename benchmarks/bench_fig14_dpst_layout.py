"""FIG14 -- array-based vs linked DPST layouts.

The optimized checker timed under both DPST representations.  The paper's
array overlay (flat parent-index arrays, no per-node allocation) reduced
geomean overhead from 5.1x to 4.2x; compare the two parametrized timings
here, or run ``python -m repro.bench.fig14`` for the rendered figure.
"""

import pytest

from repro.bench.harness import run_once

from benchmarks.conftest import BENCH_SCALE, workload_params


@pytest.mark.parametrize("spec", workload_params())
def test_array_dpst(benchmark, spec):
    benchmark.extra_info["layout"] = "array"
    benchmark(
        lambda: run_once(spec.build(BENCH_SCALE), "optimized", dpst_layout="array")
    )


@pytest.mark.parametrize("spec", workload_params())
def test_linked_dpst(benchmark, spec):
    benchmark.extra_info["layout"] = "linked"
    benchmark(
        lambda: run_once(spec.build(BENCH_SCALE), "optimized", dpst_layout="linked")
    )
