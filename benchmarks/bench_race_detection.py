"""ABL-RACE -- race detection vs atomicity checking cost.

The paper's analysis generalizes DPST-based race detection (SPD3): both
walk the same tree, but the atomicity checker maintains 12+2 metadata
entries and pattern checks where the race detector keeps 3 shadow slots.
This benchmark quantifies the increment on the same workloads.
"""

import pytest

from repro.checker import OptAtomicityChecker, RaceDetector
from repro.runtime import run_program
from repro.workloads import get

TARGETS = ["sort", "kmeans", "fluidanimate", "bodytrack"]
SCALE = 2


@pytest.mark.parametrize("name", TARGETS)
def test_race_detector(benchmark, name):
    spec = get(name)
    benchmark.extra_info["analysis"] = "racedetector"

    def run():
        detector = RaceDetector()
        run_program(spec.build(SCALE), observers=[detector])
        return detector

    benchmark(run)


@pytest.mark.parametrize("name", TARGETS)
def test_atomicity_checker(benchmark, name):
    spec = get(name)
    benchmark.extra_info["analysis"] = "optimized"

    def run():
        checker = OptAtomicityChecker()
        run_program(spec.build(SCALE), observers=[checker])
        assert not checker.report
        return checker

    benchmark(run)


@pytest.mark.parametrize("name", TARGETS)
def test_both_together(benchmark, name):
    """One execution can feed both analyses (the observer design)."""
    spec = get(name)
    benchmark.extra_info["analysis"] = "race+atomicity"

    def run():
        detector = RaceDetector()
        checker = OptAtomicityChecker()
        run_program(spec.build(SCALE), observers=[detector, checker])
        return checker

    benchmark(run)
