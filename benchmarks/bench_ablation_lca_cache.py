"""ABL-LCA -- ablation: the LCA-query cache on vs off.

The paper: "We cache the frequently accessed LCA queries to reduce the
overhead of repeated traversals in the DPST", and Table 1's %-unique
column explains why kmeans/raycast benefit least.  This benchmark times
the optimized checker with the memo table enabled and disabled on the
three most query-heavy workloads plus blackscholes (control: no queries
at all, so the configurations must tie).
"""

import pytest

from repro.bench.harness import run_once
from repro.workloads import get

#: High-query workloads plus the zero-query control.
TARGETS = ["kmeans", "raycast", "fluidanimate", "sort", "blackscholes"]
SCALE = 2


@pytest.mark.parametrize("name", TARGETS)
def test_lca_cache_enabled(benchmark, name):
    spec = get(name)
    benchmark.extra_info["cache"] = "on"

    def run():
        result = run_once(spec.build(SCALE), "optimized", lca_cache=True)
        assert not result.report()
        return result

    result = benchmark(run)
    benchmark.extra_info["unique_pct"] = (
        round(100 * result.stats.lca_unique / result.stats.lca_queries, 2)
        if result.stats.lca_queries
        else None
    )


@pytest.mark.parametrize("name", TARGETS)
def test_lca_cache_disabled(benchmark, name):
    spec = get(name)
    benchmark.extra_info["cache"] = "off"

    def run():
        result = run_once(spec.build(SCALE), "optimized", lca_cache=False)
        assert not result.report()
        return result

    benchmark(run)
