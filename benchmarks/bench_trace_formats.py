"""BENCH-TRACEFMT -- v2 JSONL vs v3 columnar trace read performance.

Measures, over one synthetic trace serialized in both formats:

* **full decode** -- iterating every event (``TraceReader.events()``);
* **sharded read** -- the hot path of the sharded pipeline: each of N
  shard workers streaming just its own memory events
  (``memory_events(shard=k, jobs=N)``, summed over all shards in one
  process so the comparison is pure format cost, no pool noise);
* **file size** -- bytes on disk (v3 frames are zlib-compressed).

The v3 sharded read routes whole frames with bulk struct unpacks and
integer shard-key comparisons, where v2 pays a regex scan per dropped
line and a JSON parse per kept line -- the claim this benchmark pins:
**v3's sharded read must beat v2's on the same trace** (exit 1
otherwise), and both numbers land in the JSON artifact.

Standalone harness (same ``--quick`` / ``--json`` contract as the other
benchmarks)::

    PYTHONPATH=src python benchmarks/bench_trace_formats.py [EVENTS] [--jobs N]
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_sharded_pipeline import synthetic_trace  # noqa: E402

from repro.trace.serialize import TraceReader, dump_trace  # noqa: E402


def _time_full_decode(path: str) -> float:
    reader = TraceReader(path)
    started = time.perf_counter()
    count = 0
    for _ in reader.events():
        count += 1
    elapsed = time.perf_counter() - started
    reader.close()
    assert count > 0
    return elapsed


def _time_sharded_read(path: str, jobs: int) -> float:
    """Sum of all shard workers' streaming passes, single-process."""
    reader = TraceReader(path)
    started = time.perf_counter()
    count = 0
    for shard in range(jobs):
        for _ in reader.memory_events(shard=shard, jobs=jobs):
            count += 1
    elapsed = time.perf_counter() - started
    reader.close()
    assert count > 0
    return elapsed


def bench_formats(events: int, jobs: int, tmp: str) -> dict:
    trace = synthetic_trace(events)
    results = {}
    for fmt, suffix in (("jsonl", ".jsonl"), ("columnar", ".trc")):
        path = os.path.join(tmp, f"bench{suffix}")
        started = time.perf_counter()
        dump_trace(trace, path, format=fmt)
        write_s = time.perf_counter() - started
        results[fmt] = {
            "bytes": os.path.getsize(path),
            "write_s": write_s,
            "full_decode_s": _time_full_decode(path),
            "sharded_read_s": _time_sharded_read(path, jobs),
        }
    return results


def main(argv=None) -> int:
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        description="trace format (v2 JSONL vs v3 columnar) read benchmark"
    )
    parser.add_argument("events", nargs="?", type=int, default=200_000)
    parser.add_argument("--jobs", type=int, default=4,
                        help="shard count for the sharded-read pass")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 20k events regardless of the positional",
    )
    parser.add_argument("--json", metavar="OUT.json", default=None)
    args = parser.parse_args(argv)
    events = 20_000 if args.quick else args.events

    print(f"generating {events} memory events ...", flush=True)
    with tempfile.TemporaryDirectory() as tmp:
        results = bench_formats(events, args.jobs, tmp)

    print(f"\n{'format':>10} {'MB':>7} {'write_s':>8} {'decode_s':>9} "
          f"{'shard_s':>8}")
    for fmt, row in results.items():
        print(
            f"{fmt:>10} {row['bytes'] / 1e6:>7.2f} {row['write_s']:>8.3f} "
            f"{row['full_decode_s']:>9.3f} {row['sharded_read_s']:>8.3f}"
        )
    v2 = results["jsonl"]
    v3 = results["columnar"]
    shard_speedup = v2["sharded_read_s"] / v3["sharded_read_s"]
    decode_speedup = v2["full_decode_s"] / v3["full_decode_s"]
    size_ratio = v2["bytes"] / v3["bytes"]
    print(
        f"\nv3 vs v2: sharded read {shard_speedup:.2f}x, "
        f"full decode {decode_speedup:.2f}x, {size_ratio:.1f}x smaller"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "benchmark": "trace_formats",
                    "events": events,
                    "jobs": args.jobs,
                    "formats": results,
                    "sharded_read_speedup": shard_speedup,
                    "full_decode_speedup": decode_speedup,
                    "size_ratio": size_ratio,
                },
                handle,
                indent=2,
            )
        print(f"json written to {args.json}")

    if shard_speedup <= 1.0:
        print(
            "FAIL: v3 sharded read did not beat v2 "
            f"({v3['sharded_read_s']:.3f}s vs {v2['sharded_read_s']:.3f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
