"""ABL-EXPLORE -- single-trace checking vs Velodrome + exploration.

The paper argues trace-based checkers "should be used in tandem with
interleaving exploration strategies" to match its coverage.  This
benchmark makes the cost of that tandem measurable: the optimized checker
runs once per program; the exploring Velodrome replays every legal
schedule (factorially many in the task count).  The crossover -- where
one pass beats exhaustive replay -- is already at two parallel tasks.
"""

import pytest

from repro.checker import ExploringVelodrome, OptAtomicityChecker
from repro.runtime import TaskProgram, run_program


def fanout_program(tasks: int) -> TaskProgram:
    def rmw(ctx):
        value = ctx.read("X")
        ctx.write("X", value + 1)

    def main(ctx):
        for _ in range(tasks):
            ctx.spawn(rmw)
        ctx.sync()

    return TaskProgram(main, name=f"fanout{tasks}", initial_memory={"X": 0})


TASK_COUNTS = [2, 3, 4]


@pytest.mark.parametrize("tasks", TASK_COUNTS)
def test_optimized_single_pass(benchmark, tasks):
    benchmark.extra_info["analysis"] = "optimized"

    def run():
        checker = OptAtomicityChecker()
        run_program(fanout_program(tasks), observers=[checker])
        assert checker.report.locations() == ["X"]
        return checker

    benchmark(run)


@pytest.mark.parametrize("tasks", TASK_COUNTS)
def test_velodrome_with_exploration(benchmark, tasks):
    benchmark.extra_info["analysis"] = "velodrome+explorer"

    def run():
        exploring = ExploringVelodrome(max_schedules=100_000)
        run_program(fanout_program(tasks), observers=[exploring])
        assert exploring.violation_locations() == {"X"}
        return exploring

    exploring = benchmark(run)
    benchmark.extra_info["schedules_explored"] = exploring.schedules_explored
