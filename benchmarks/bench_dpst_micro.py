"""Microbenchmarks: raw DPST operation costs under both layouts.

Isolates what Figure 14 aggregates -- node insertion and LCA/parallelism
query cost for the array overlay vs the linked representation -- without
any checker or runtime on top.
"""

import random

import pytest

from repro.dpst import ArrayDPST, LCAEngine, LinkedDPST, NodeKind, ROOT_ID

LAYOUTS = {"array": ArrayDPST, "linked": LinkedDPST}


def build_wide_deep(tree, fanout=8, depth=5):
    """A finish/async comb with `fanout**...` steps down `depth` levels."""
    frontier = [ROOT_ID]
    steps = []
    for _ in range(depth):
        parent = frontier[len(frontier) // 2]
        finish = tree.add_node(parent, NodeKind.FINISH)
        next_frontier = []
        for _ in range(fanout):
            async_node = tree.add_node(finish, NodeKind.ASYNC)
            steps.append(tree.add_node(async_node, NodeKind.STEP))
            next_frontier.append(async_node)
        frontier = next_frontier
    return steps


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_insertion(benchmark, layout):
    make = LAYOUTS[layout]
    benchmark.extra_info["layout"] = layout

    def run():
        tree = make()
        parent = ROOT_ID
        for _ in range(200):
            finish = tree.add_node(parent, NodeKind.FINISH)
            tree.add_node(finish, NodeKind.STEP)
            async_node = tree.add_node(finish, NodeKind.ASYNC)
            tree.add_node(async_node, NodeKind.STEP)
            parent = finish
        return len(tree)

    assert benchmark(run) == 801


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_uncached_parallel_queries(benchmark, layout):
    tree = LAYOUTS[layout]()
    steps = build_wide_deep(tree)
    rng = random.Random(1)
    pairs = [(rng.choice(steps), rng.choice(steps)) for _ in range(500)]
    benchmark.extra_info["layout"] = layout

    def run():
        engine = LCAEngine(tree, cache=False)
        hits = 0
        for a, b in pairs:
            if engine.parallel(a, b):
                hits += 1
        return hits

    benchmark(run)


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_cached_parallel_queries(benchmark, layout):
    tree = LAYOUTS[layout]()
    steps = build_wide_deep(tree)
    rng = random.Random(1)
    # Heavy repetition: the regime the LCA cache targets.
    pool = [(rng.choice(steps), rng.choice(steps)) for _ in range(50)]
    pairs = [rng.choice(pool) for _ in range(500)]
    benchmark.extra_info["layout"] = layout

    def run():
        engine = LCAEngine(tree, cache=True)
        hits = 0
        for a, b in pairs:
            if engine.parallel(a, b):
                hits += 1
        return hits

    benchmark(run)
