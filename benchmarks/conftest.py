"""Shared configuration for the pytest-benchmark suite.

Each benchmark module regenerates one of the paper's evaluation artifacts
(see DESIGN.md's experiment index).  ``--benchmark-only`` runs just these;
plain test runs skip them because of the ``benchmark`` fixture.

The scale is kept small so the whole suite completes in minutes; pass a
larger scale to the ``python -m repro.bench.*`` entry points for
higher-fidelity runs.
"""

import pytest

from repro.workloads import all_workloads

#: Input scale used across the pytest benchmarks.
BENCH_SCALE = 2


def workload_params():
    """(ids, specs) for parametrizing one benchmark per workload."""
    specs = all_workloads()
    return [pytest.param(spec, id=spec.name) for spec in specs]
