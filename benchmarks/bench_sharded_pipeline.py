"""BENCH-SHARD -- throughput of the location-sharded offline pipeline.

Measures events-checked-per-second of :func:`repro.checker.sharded.check_sharded`
over a synthetic JSONL trace, in-process (``jobs=1``) versus sharded over
worker processes (``jobs=2``, ``jobs=4``).  The optimized checker's state
is per-location, so shards are embarrassingly parallel; on a multi-core
machine 4 workers should deliver >= 2x the single-process throughput once
the trace is large enough to amortize pool startup and the per-worker
streaming pass.  (On a single-core container the sharded runs only
demonstrate correctness -- there is no hardware parallelism to win.)

Two entry points:

* pytest-benchmark (small scale, runs with the rest of the bench suite)::

      PYTHONPATH=src python -m pytest benchmarks/bench_sharded_pipeline.py --benchmark-only

* standalone harness at full scale (>= 100k memory events)::

      PYTHONPATH=src python benchmarks/bench_sharded_pipeline.py [EVENTS] [JOBS...]
"""

import os
import random
import sys
import time

import pytest

from repro.checker.sharded import check_sharded
from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.report import READ, WRITE
from repro.runtime.events import MemoryEvent
from repro.trace.serialize import dump_trace_jsonl
from repro.trace.trace import Trace


def synthetic_trace(memory_events: int, tasks: int = 256, locations: int = 512,
                    shared_fraction: float = 0.02, seed: int = 0) -> Trace:
    """A flat fork-join trace with *memory_events* accesses.

    Every task is a direct child of the root finish (all pairwise
    parallel).  Each access is half of a read-modify-write pair; most
    pairs hit one of *locations* task-partitioned scalars (conflict-free,
    pure checker throughput) and a *shared_fraction* slice hits a small
    contended set so the run produces a non-trivial -- but bounded --
    violation report.  Built directly against the DPST so benchmark setup
    is O(events) instead of paying the instrumented runtime's full cost.
    """
    rng = random.Random(seed)
    dpst = ArrayDPST()
    steps = []
    for _ in range(tasks):
        async_node = dpst.add_node(ROOT_ID, NodeKind.ASYNC)
        steps.append(dpst.add_node(async_node, NodeKind.STEP))
    events = []
    seq = 0
    while len(events) < memory_events:
        task = rng.randrange(tasks)
        if rng.random() < shared_fraction:
            location = ("shared", rng.randrange(8))
        else:
            # Partition private locations by task so they never conflict.
            location = ("private", task, rng.randrange(locations))
        for access_type in (READ, WRITE):  # one RMW pair per iteration
            events.append(
                MemoryEvent(seq, task + 1, steps[task], location, access_type)
            )
            seq += 1
    return Trace(events[:memory_events], dpst=dpst)


def write_trace(path: str, memory_events: int) -> str:
    dump_trace_jsonl(synthetic_trace(memory_events), path)
    return path


# -- pytest-benchmark hooks --------------------------------------------------

BENCH_EVENTS = 20_000


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("shard") / "bench.jsonl")
    return write_trace(path, BENCH_EVENTS)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_sharded_throughput(benchmark, trace_file, jobs):
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["events"] = BENCH_EVENTS

    report = benchmark(lambda: check_sharded(trace_file, jobs=jobs))
    benchmark.extra_info["violations"] = len(report)


# -- standalone harness ------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        description="sharded-pipeline throughput benchmark"
    )
    parser.add_argument("events", nargs="?", type=int, default=100_000)
    parser.add_argument("jobs", nargs="*", type=int, default=[1, 2, 4])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 10k events regardless of the positional",
    )
    parser.add_argument("--json", metavar="OUT.json", default=None)
    args = parser.parse_args(argv)
    events = 10_000 if args.quick else args.events
    jobs_list = args.jobs or [1, 2, 4]

    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.jsonl")
        print(f"generating {events} memory events ...", flush=True)
        write_trace(path, events)
        size_mb = os.path.getsize(path) / 1e6
        print(f"trace file: {size_mb:.1f} MB, cpus={os.cpu_count()}\n")
        print(f"{'jobs':>5} {'seconds':>9} {'events/s':>10} {'speedup':>8}")
        base = None
        for jobs in jobs_list:
            started = time.perf_counter()
            report = check_sharded(path, jobs=jobs)
            elapsed = time.perf_counter() - started
            base = elapsed if base is None else base
            rows.append(
                {
                    "jobs": jobs,
                    "seconds": elapsed,
                    "events_per_s": events / elapsed,
                    "speedup": base / elapsed,
                    "violations": len(report),
                }
            )
            print(
                f"{jobs:>5} {elapsed:>9.2f} {events / elapsed:>10.0f} "
                f"{base / elapsed:>7.2f}x   ({len(report)} violation(s))"
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "benchmark": "sharded_pipeline",
                    "events": events,
                    "cpus": os.cpu_count(),
                    "runs": rows,
                },
                handle,
                indent=2,
            )
        print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
