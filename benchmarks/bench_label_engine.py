"""ABL-LABELS -- parallelism oracle comparison: LCA walks vs labels.

The paper's approach answers parallelism queries with (cached) LCA tree
walks over the array DPST; the older Mellor-Crummey lineage attaches
labels and compares them.  This ablation times the optimized checker
under both engines, and micro-benchmarks the raw query primitives, making
the paper's design choice inspectable: labels pay O(depth) memory per
node and O(prefix) comparisons, walks pay pointer/index chasing.
"""

import random

import pytest

from repro.checker import OptAtomicityChecker
from repro.dpst import ArrayDPST, LCAEngine, NodeKind, ROOT_ID
from repro.dpst.labels import LabelEngine
from repro.runtime import run_program
from repro.workloads import get

ENGINES = ["lca", "labels"]
TARGETS = ["kmeans", "sort", "fluidanimate"]
SCALE = 2


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", TARGETS)
def test_checker_under_engine(benchmark, name, engine):
    spec = get(name)
    benchmark.extra_info["engine"] = engine

    def run():
        checker = OptAtomicityChecker()
        result = run_program(
            spec.build(SCALE), observers=[checker], parallel_engine=engine
        )
        assert not result.report()
        return result

    benchmark(run)


def _deep_tree(depth=48, width=4):
    """A deep comb so label length / walk distance actually matter."""
    tree = ArrayDPST()
    steps = []
    parent = ROOT_ID
    for _ in range(depth):
        finish = tree.add_node(parent, NodeKind.FINISH)
        for _ in range(width):
            async_node = tree.add_node(finish, NodeKind.ASYNC)
            steps.append(tree.add_node(async_node, NodeKind.STEP))
        parent = finish
    return tree, steps


@pytest.mark.parametrize("engine_name", ENGINES)
def test_raw_query_cost(benchmark, engine_name):
    tree, steps = _deep_tree()
    rng = random.Random(7)
    pairs = [(rng.choice(steps), rng.choice(steps)) for _ in range(400)]
    benchmark.extra_info["engine"] = engine_name

    def run():
        engine = (
            LCAEngine(tree, cache=False)
            if engine_name == "lca"
            else LabelEngine(tree, cache=False)
        )
        hits = 0
        for a, b in pairs:
            if engine.parallel(a, b):
                hits += 1
        return hits

    benchmark(run)
