"""BENCH-ENGINES -- per-query cost of every registered parallelism engine.

The engine registry (:mod:`repro.dpst.engines`) makes the paper's LCA
walks one option among several: offset-span-style labels, incremental
vector clocks (arXiv:2001.04961) and DePa graded dag-path labels
(arXiv:2204.14168) all answer the same ``parallel(a, b)`` question.
This harness measures what each answer *costs*, per query, on workloads
chosen to separate the asymptotics:

* **deep** -- a deep comb (nested finish chain), the regime the LCA
  engine likes least: every uncached query walks O(depth) parents,
  while DePa compares two machine integers.  The harness asserts that
  DePa beats LCA here -- that is the headline claim of constant-time
  labels, and CI keys off the exit status.
* **wide** -- a flat fan-out of siblings, where LCA walks are short and
  constant-factor differences dominate.
* **mixed** -- a random tree from a seeded generator, the
  no-particular-structure case.

Engines are enumerated from :func:`repro.dpst.engines.available_engines`,
so a newly registered engine lands in the comparison (and the JSON
artifact) without touching this file.  Labels/clocks are materialized
once before timing and the verdict memo is disabled, so the numbers are
the steady-state *query* path, not one-time build work.

Two entry points:

* pytest-benchmark (runs with the rest of the bench suite)::

      PYTHONPATH=src python -m pytest benchmarks/bench_engines.py --benchmark-only

* standalone harness::

      PYTHONPATH=src python benchmarks/bench_engines.py [--depth D]
          [--pairs N] [--repeats R] [--quick] [--json OUT.json]
"""

import argparse
import json
import random
import sys
import time

import pytest

from repro.dpst import ArrayDPST, NodeKind, ROOT_ID
from repro.dpst.engines import available_engines, make_engine


def deep_tree(depth, width=2):
    """A nested-finish comb: queries span long ancestor chains."""
    tree = ArrayDPST()
    steps = []
    parent = ROOT_ID
    for _ in range(depth):
        finish = tree.add_node(parent, NodeKind.FINISH)
        for _ in range(width):
            async_node = tree.add_node(finish, NodeKind.ASYNC)
            steps.append(tree.add_node(async_node, NodeKind.STEP))
        parent = finish
    return tree, steps


def wide_tree(fanout):
    """One finish, *fanout* parallel tasks: shortest possible walks."""
    tree = ArrayDPST()
    steps = []
    for _ in range(fanout):
        async_node = tree.add_node(ROOT_ID, NodeKind.ASYNC)
        steps.append(tree.add_node(async_node, NodeKind.STEP))
    return tree, steps


def mixed_tree(nodes, seed=11):
    """A random well-formed tree: the no-particular-structure case."""
    rng = random.Random(seed)
    tree = ArrayDPST()
    scopes = [ROOT_ID]
    steps = []
    for _ in range(nodes):
        parent = rng.choice(scopes)
        kind = rng.choice((NodeKind.STEP, NodeKind.ASYNC, NodeKind.FINISH))
        node = tree.add_node(parent, kind)
        if kind is NodeKind.STEP:
            steps.append(node)
        else:
            scopes.append(node)
    if not steps:  # pragma: no cover - seeds are pinned
        steps.append(tree.add_node(ROOT_ID, NodeKind.STEP))
    return tree, steps


def query_pairs(steps, count, seed=7):
    rng = random.Random(seed)
    return [(rng.choice(steps), rng.choice(steps)) for _ in range(count)]


def warm_engine(name, tree, pairs):
    """An engine with labels/clocks materialized but no verdict memo."""
    engine = make_engine(name, tree, cache=False)
    for a, b in pairs:
        engine.parallel(a, b)
    engine.reset_stats()
    return engine


def time_queries(engine, pairs, repeats):
    """Best-of-*repeats* seconds for one pass over *pairs*."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        parallel = engine.parallel
        for a, b in pairs:
            parallel(a, b)
        best = min(best, time.perf_counter() - started)
    return best


def run_matrix(workloads, pair_count, repeats):
    """``{engine: {workload: row}}`` over every registered engine."""
    results = {}
    for name in available_engines():
        per_workload = {}
        for label, (tree, steps) in workloads.items():
            pairs = query_pairs(steps, pair_count)
            engine = warm_engine(name, tree, pairs)
            seconds = time_queries(engine, pairs, repeats)
            per_workload[label] = {
                "seconds": seconds,
                "per_query_us": 1e6 * seconds / len(pairs),
                "queries": engine.stats.queries,
                "hops": engine.stats.hops,
            }
        results[name] = per_workload
    return results


# -- pytest-benchmark hooks --------------------------------------------------

BENCH_DEPTH = 48
BENCH_PAIRS = 400


@pytest.fixture(scope="module")
def bench_workloads():
    return {
        "deep": deep_tree(BENCH_DEPTH),
        "wide": wide_tree(BENCH_DEPTH * 2),
    }


@pytest.mark.parametrize("workload", ["deep", "wide"])
@pytest.mark.parametrize("engine_name", available_engines())
def test_engine_query_cost(benchmark, bench_workloads, engine_name, workload):
    tree, steps = bench_workloads[workload]
    pairs = query_pairs(steps, BENCH_PAIRS)
    engine = warm_engine(engine_name, tree, pairs)
    benchmark.extra_info["engine"] = engine_name
    benchmark.extra_info["workload"] = workload

    def run():
        hits = 0
        for a, b in pairs:
            if engine.parallel(a, b):
                hits += 1
        return hits

    benchmark(run)


# -- standalone harness ------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--depth", type=int, default=192,
                        help="nesting depth of the deep comb (default: 192)")
    parser.add_argument("--pairs", type=int, default=2000,
                        help="query pairs per workload (default: 2000)")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller trees, fewer pairs")
    parser.add_argument("--json", metavar="OUT.json", default=None)
    args = parser.parse_args(argv)

    depth = 64 if args.quick else args.depth
    pair_count = 500 if args.quick else args.pairs
    repeats = 3 if args.quick else args.repeats

    workloads = {
        "deep": deep_tree(depth),
        "wide": wide_tree(depth * 2),
        "mixed": mixed_tree(depth * 6),
    }
    print(
        f"engines: {', '.join(available_engines())}; "
        f"depth={depth} pairs={pair_count} repeats={repeats}",
        flush=True,
    )
    results = run_matrix(workloads, pair_count, repeats)

    labels = list(workloads)
    header = f"{'engine':>8}" + "".join(f"{label + ' us/q':>14}" for label in labels)
    print("\n" + header)
    for name in available_engines():
        row = results[name]
        print(
            f"{name:>8}"
            + "".join(f"{row[label]['per_query_us']:>14.3f}" for label in labels)
        )

    depa_us = results["depa"]["deep"]["per_query_us"]
    lca_us = results["lca"]["deep"]["per_query_us"]
    ok = depa_us < lca_us
    print(
        f"\ndeep nesting: depa {depa_us:.3f} us/query vs lca {lca_us:.3f} "
        f"us/query: {'OK (depa faster)' if ok else 'FAIL (depa not faster)'}"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "benchmark": "engines",
                    "depth": depth,
                    "pairs": pair_count,
                    "repeats": repeats,
                    "engines": results,
                    "depa_beats_lca_on_deep": ok,
                },
                handle,
                indent=2,
            )
        print(f"json written to {args.json}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
