"""BENCH-FUZZ -- throughput of the differential fuzzing oracle.

Measures programs-per-second and events-per-second of one oracle pass
(:func:`repro.fuzz.oracle.check_spec`) and of whole campaigns
(:func:`repro.fuzz.harness.run_campaign`), split by the expensive matrix
axes: the sharded leg (``jobs``) and the fresh-execution schedule legs.
The numbers size the CI ``fuzz-smoke`` budget -- 200 full-matrix runs
must stay well under 5 minutes -- and show where oracle time goes when
tuning campaign scale.

Two entry points:

* pytest-benchmark (small scale, runs with the rest of the bench suite)::

      PYTHONPATH=src python -m pytest benchmarks/bench_fuzz_oracle.py --benchmark-only

* standalone harness::

      PYTHONPATH=src python benchmarks/bench_fuzz_oracle.py [RUNS] [--quick] [--json OUT]
"""

import sys
import time

import pytest

from repro.fuzz.generate import FuzzConfig, ProgramGenerator
from repro.fuzz.harness import campaign_seeds, run_campaign
from repro.fuzz.oracle import check_spec
from repro.runtime.program import run_program

# -- pytest-benchmark hooks --------------------------------------------------

BENCH_SEED = 1


@pytest.fixture(scope="module")
def bench_spec():
    return ProgramGenerator(FuzzConfig()).generate_spec(BENCH_SEED)


def test_oracle_trace_legs_only(benchmark, bench_spec):
    """The same-trace matrix: engines, prefilter, replay, no re-execution."""
    outcome = benchmark(
        lambda: check_spec(bench_spec, seed=BENCH_SEED, jobs=1, schedules=False)
    )
    benchmark.extra_info["events"] = outcome.events
    assert outcome.ok


def test_oracle_full_matrix(benchmark, bench_spec):
    """Everything, including the sharded leg and both schedule legs."""
    outcome = benchmark(
        lambda: check_spec(bench_spec, seed=BENCH_SEED, jobs=2, schedules=True)
    )
    benchmark.extra_info["events"] = outcome.events
    assert outcome.ok


# -- standalone harness ------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import json
    import os

    parser = argparse.ArgumentParser(
        description="differential fuzzing oracle throughput benchmark"
    )
    parser.add_argument("runs", nargs="?", type=int, default=200)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 50 runs regardless of the positional",
    )
    parser.add_argument("--json", metavar="OUT.json", default=None)
    args = parser.parse_args(argv)
    runs = 50 if args.quick else args.runs

    config = FuzzConfig()
    generator = ProgramGenerator(config)
    seeds = campaign_seeds(base_seed=BENCH_SEED, runs=runs)
    total_events = sum(
        len(
            run_program(generator.generate_program(seed), record_trace=True)
            .trace.memory_events()
        )
        for seed in seeds[: min(10, runs)]
    )
    print(
        f"fuzzing oracle benchmark: {runs} run(s), cpus={os.cpu_count()}, "
        f"~{total_events // min(10, runs)} events/program\n"
    )

    rows = []
    print(f"{'configuration':<34} {'seconds':>9} {'prog/s':>8} {'events/s':>10}")
    for label, jobs, schedules in (
        ("trace legs only (jobs=1)", 1, False),
        ("+ schedule legs (jobs=1)", 1, True),
        ("full matrix (jobs=4)", 4, True),
    ):
        started = time.perf_counter()
        events = 0
        disagreements = 0
        for seed in seeds:
            outcome = check_spec(
                generator.generate_spec(seed),
                seed=seed,
                jobs=jobs,
                schedules=schedules,
            )
            events += outcome.events
            disagreements += len(outcome.disagreements)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "configuration": label,
                "jobs": jobs,
                "schedules": schedules,
                "seconds": elapsed,
                "programs_per_s": runs / elapsed,
                "events_per_s": events / elapsed,
                "disagreements": disagreements,
            }
        )
        print(
            f"{label:<34} {elapsed:>9.2f} {runs / elapsed:>8.1f} "
            f"{events / elapsed:>10.0f}"
        )
        if disagreements:
            print(f"  !! {disagreements} oracle disagreement(s) -- investigate")

    started = time.perf_counter()
    summary = run_campaign(config=config, runs=runs, base_seed=BENCH_SEED, jobs=4)
    campaign_s = time.perf_counter() - started
    print(
        f"\ncampaign wrapper overhead: {campaign_s:.2f}s for {runs} run(s) "
        f"({summary.events} events, ok={summary.ok})"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "benchmark": "fuzz_oracle",
                    "runs": runs,
                    "cpus": os.cpu_count(),
                    "configurations": rows,
                    "campaign_seconds": campaign_s,
                    "campaign_ok": summary.ok,
                },
                handle,
                indent=2,
            )
        print(f"json written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
