"""ABL-META -- ablation: fixed 12+2-entry metadata vs unbounded history.

Times the optimized checker against the basic (Figure 3) checker on the
same workloads and records the stored-metadata sizes: the basic history
grows with the number of dynamic accesses while the optimized global
space is capped at 12 entries per location -- the paper's Section 3.2
motivation, measured.
"""

import pytest

from repro.checker import BasicAtomicityChecker, OptAtomicityChecker
from repro.runtime import run_program
from repro.workloads import get

#: A spread of access-density profiles.
TARGETS = ["sort", "karatsuba", "kmeans", "bodytrack"]
SCALE = 2


@pytest.mark.parametrize("name", TARGETS)
def test_optimized_fixed_metadata(benchmark, name):
    spec = get(name)
    benchmark.extra_info["checker"] = "optimized"

    def run():
        checker = OptAtomicityChecker()
        run_program(spec.build(SCALE), observers=[checker])
        return checker

    checker = benchmark(run)
    benchmark.extra_info["max_entries_per_location"] = (
        checker.max_entries_per_location()
    )
    benchmark.extra_info["total_global_entries"] = checker.total_global_entries()
    assert checker.max_entries_per_location() <= 12


@pytest.mark.parametrize("name", TARGETS)
def test_basic_unbounded_metadata(benchmark, name):
    spec = get(name)
    benchmark.extra_info["checker"] = "basic"

    def run():
        checker = BasicAtomicityChecker()
        run_program(spec.build(SCALE), observers=[checker])
        return checker

    checker = benchmark(run)
    benchmark.extra_info["total_history_entries"] = checker.total_history_entries()
