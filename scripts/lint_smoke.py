#!/usr/bin/env python
"""CI lint-smoke: ``repro lint --json`` over every example and workload.

Runs the static atomicity lint pass on an explicit manifest of targets,
each with its expected outcome, and fails loudly on any drift:

* ``clean`` -- zero ERROR-severity diagnostics (and exit code 0).  Races
  without atomicity violations (``racy_but_atomic``, ``racy_branch``)
  are *clean* here: the lint checks serializability, not race freedom.
* ``candidate`` -- at least one candidate unserializable triple reported
  at ERROR severity (``SAV001``: the skeleton is exact, so the triple is
  statically confirmed) and exit code 1.
* ``candidate-warn`` -- at least one candidate triple, but only at
  WARNING severity (``SAV002``: the skeleton is imprecise, so the lint
  will not claim an error).  Exit code 0.

Note ``examples/quickstart.py`` and ``examples/paper_example.py`` are
*intentionally* buggy -- they demonstrate the violations the paper's
checker finds -- so they expect candidates, not cleanliness.

The collected JSON reports are written to one artifact (default
``lint-smoke.json``) for upload.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from typing import Any, Dict, List, Tuple

CLEAN = "clean"
CANDIDATE = "candidate"
CANDIDATE_WARN = "candidate-warn"

#: (target, expectation) for every examples/ program entry point and
#: every src/repro/workloads/ kernel (clean and buggy variants).
MANIFEST: List[Tuple[str, str]] = [
    # examples/
    ("examples.quickstart:main", CANDIDATE),
    ("examples.bank_transfer:main", CLEAN),
    ("examples.paper_example:figure1", CANDIDATE),
    ("examples.paper_example:figure11", CANDIDATE),
    ("examples.lock_versioning:buggy_worker", CLEAN),
    ("examples.lock_versioning:correct_worker", CLEAN),
    ("examples.coverage_guarantee:safe_fixed_accesses", CLEAN),
    ("examples.coverage_guarantee:reduction_with_dynamic_indices", CLEAN),
    ("examples.coverage_guarantee:racy_branch", CLEAN),
    ("examples.kmeans_audit:build_broken", CANDIDATE_WARN),
    ("examples.races_vs_atomicity:racy_but_atomic", CLEAN),
    ("examples.races_vs_atomicity:atomic_violation_without_race", CANDIDATE),
    ("examples.pipeline_audit:transform_unprotected", CLEAN),
    ("examples.pipeline_audit:transform_locked", CLEAN),
    # the 13 clean workload kernels
    ("repro.workloads.blackscholes:build", CLEAN),
    ("repro.workloads.bodytrack:build", CLEAN),
    ("repro.workloads.streamcluster:build", CLEAN),
    ("repro.workloads.swaptions:build", CLEAN),
    ("repro.workloads.fluidanimate:build", CLEAN),
    ("repro.workloads.convexhull:build", CLEAN),
    ("repro.workloads.delrefine:build", CLEAN),
    ("repro.workloads.deltriang:build", CLEAN),
    ("repro.workloads.karatsuba:build", CLEAN),
    ("repro.workloads.kmeans:build", CLEAN),
    ("repro.workloads.nearestneigh:build", CLEAN),
    ("repro.workloads.raycast:build", CLEAN),
    ("repro.workloads.sort:build", CLEAN),
    # workloads/buggy.py: exact skeletons yield SAV001 errors, imprecise
    # ones still surface their candidates as SAV002 warnings
    ("repro.workloads.buggy:build_swaptions_unlocked", CANDIDATE),
    ("repro.workloads.buggy:build_streamcluster_split_cs", CANDIDATE),
    ("repro.workloads.buggy:build_deltriang_mutable_walk", CANDIDATE),
    ("repro.workloads.buggy:build_kmeans_unlocked", CANDIDATE_WARN),
    ("repro.workloads.buggy:build_delrefine_racy_cavity", CANDIDATE_WARN),
    ("repro.workloads.buggy:build_fluidanimate_missing_sync", CANDIDATE_WARN),
]


def run_lint(target: str) -> Tuple[int, Dict[str, Any]]:
    """One ``repro lint --json`` invocation; returns (exit code, report)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", target, "--json"],
        capture_output=True,
        text=True,
    )
    if proc.returncode not in (0, 1):
        raise RuntimeError(
            f"repro lint {target} crashed (exit {proc.returncode}):\n"
            f"{proc.stderr}"
        )
    return proc.returncode, json.loads(proc.stdout)


def check_expectation(
    target: str, expectation: str, exit_code: int, report: Dict[str, Any]
) -> List[str]:
    counts = report["counts"]
    problems: List[str] = []
    if expectation == CLEAN:
        if counts["errors"]:
            problems.append(f"expected zero errors, got {counts['errors']}")
        if exit_code != 0:
            problems.append(f"expected exit 0, got {exit_code}")
    elif expectation == CANDIDATE:
        if not counts["candidates"]:
            problems.append("expected candidate triples, found none")
        if not counts["errors"]:
            problems.append("expected SAV001 errors, found none")
        if exit_code != 1:
            problems.append(f"expected exit 1, got {exit_code}")
    elif expectation == CANDIDATE_WARN:
        if not counts["candidates"]:
            problems.append("expected candidate triples, found none")
        if counts["errors"]:
            problems.append(
                f"imprecise skeleton must not claim errors, got "
                f"{counts['errors']}"
            )
    else:  # pragma: no cover - manifest typo guard
        problems.append(f"unknown expectation {expectation!r}")
    return problems


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="lint-smoke.json",
        help="artifact path for the collected JSON reports",
    )
    args = parser.parse_args(argv)

    results: List[Dict[str, Any]] = []
    failures = 0
    for target, expectation in MANIFEST:
        exit_code, report = run_lint(target)
        problems = check_expectation(target, expectation, exit_code, report)
        counts = report["counts"]
        verdict = "ok" if not problems else "FAIL"
        print(
            f"{verdict:<4} {target:<58} [{expectation}] "
            f"errors={counts['errors']} warnings={counts['warnings']} "
            f"candidates={counts['candidates']}"
        )
        for problem in problems:
            print(f"       -> {problem}")
        failures += bool(problems)
        results.append(
            {
                "target": target,
                "expectation": expectation,
                "exit_code": exit_code,
                "problems": problems,
                "report": report,
            }
        )

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump({"results": results, "failures": failures}, handle, indent=2)
    print(
        f"\n{len(results)} target(s), {failures} failure(s); "
        f"reports written to {args.output}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
