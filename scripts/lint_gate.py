#!/usr/bin/env python
"""CI lint-gate: ``repro lint`` over examples/, gated by a committed baseline.

Where ``lint_smoke.py`` asserts coarse per-target expectations ("clean" /
"has candidates"), this gate pins the *exact* finding set: every
diagnostic on every examples/ entry point must have a fingerprint in the
committed baseline (``ci/lint-baseline.json``), and the job fails on any
finding the baseline does not know.  Stale baseline entries (findings
that no longer occur) are reported but do not fail the build -- they are
a prompt to refresh.

A single SARIF 2.1.0 log covering all targets (one run per target) is
written for artifact upload, so findings render in code-scanning UIs.

Refresh the baseline after intentional lint changes with::

    python scripts/lint_gate.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

# Make examples/ importable regardless of invocation directory.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

#: Every examples/ entry point (the same set lint_smoke.py covers).
TARGETS: List[str] = [
    "examples.quickstart:main",
    "examples.bank_transfer:main",
    "examples.paper_example:figure1",
    "examples.paper_example:figure11",
    "examples.lock_versioning:buggy_worker",
    "examples.lock_versioning:correct_worker",
    "examples.coverage_guarantee:safe_fixed_accesses",
    "examples.coverage_guarantee:reduction_with_dynamic_indices",
    "examples.coverage_guarantee:racy_branch",
    "examples.kmeans_audit:build_broken",
    "examples.races_vs_atomicity:racy_but_atomic",
    "examples.races_vs_atomicity:atomic_violation_without_race",
    "examples.pipeline_audit:transform_unprotected",
    "examples.pipeline_audit:transform_locked",
]

DEFAULT_BASELINE = "ci/lint-baseline.json"
DEFAULT_SARIF = "lint-gate.sarif"


def _load_target(spec: str):
    import importlib

    module_name, _, func_name = spec.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="committed known-findings baseline (default %(default)s)",
    )
    parser.add_argument(
        "--sarif", default=DEFAULT_SARIF,
        help="SARIF artifact path (default %(default)s)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    args = parser.parse_args(argv)

    from repro.static import (
        BaselineError,
        compare_to_baseline,
        lint_program,
        reports_to_sarif,
        update_baseline,
    )

    reports = []
    for target in TARGETS:
        loaded = _load_target(target)
        if not callable(loaded):  # build() helpers return a TaskProgram
            raise SystemExit(f"{target} is not callable")
        report = lint_program(loaded, target=target)
        counts = report.severity_counts()
        print(
            f"{target:<58} errors={counts['error']} "
            f"warnings={counts['warning']} infos={counts['info']}"
        )
        reports.append(report)

    with open(args.sarif, "w", encoding="utf-8") as handle:
        json.dump(reports_to_sarif(reports), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"SARIF log ({len(reports)} runs) written to {args.sarif}")

    if args.update:
        data = update_baseline(reports, args.baseline)
        print(
            f"baseline {args.baseline} updated: "
            f"{len(data['findings'])} known finding(s)"
        )
        return 0

    try:
        new, stale = compare_to_baseline(reports, args.baseline)
    except BaselineError as error:
        raise SystemExit(str(error))
    for fingerprint in stale:
        print(f"stale baseline entry (finding no longer occurs): {fingerprint}")
    for report, diagnostic in new:
        print(f"NEW [{report.target}] {diagnostic.describe()}")
    total = sum(len(report.diagnostics) for report in reports)
    print(
        f"\n{len(TARGETS)} target(s), {total} finding(s), "
        f"{len(new)} new, {len(stale)} stale"
    )
    if new:
        print(
            "findings not in the committed baseline; if intentional, "
            "refresh it with: python scripts/lint_gate.py --update"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
